"""Bench runner rows: shape and the load-imbalance rollup."""

from repro.benchmarking.report import build_bench_report, validate_bench_report
from repro.benchmarking.runner import STAGES, run_workload
from repro.benchmarking.suites import get_suite


class TestRunWorkload:
    def test_row_includes_load_imbalance_rollup(self):
        workload = get_suite("smoke")[0]
        row = run_workload(workload)
        assert isinstance(row["load_imbalance"], dict)
        # The pipeline's fan-out sites record one gauge per calling span;
        # every rolled-up value is max/mean >= 1.0 by construction.
        assert row["load_imbalance"]
        for span, value in row["load_imbalance"].items():
            assert isinstance(span, str)
            assert value >= 1.0

    def test_row_validates_as_bench_workload(self):
        workload = get_suite("smoke")[0]
        row = run_workload(workload)
        assert set(row["latency_s"]) == set(STAGES)
        validate_bench_report(build_bench_report("smoke", [row], git_sha="test"))


class TestRunSuiteRecording:
    def test_suite_run_appends_one_bench_record(self, tmp_path):
        from repro.benchmarking.runner import run_suite
        from repro.observability.runs import RunRegistry

        registry = RunRegistry(tmp_path / "runs")
        report = run_suite("smoke", git_sha="test", registry=registry)
        (record,) = registry.records()
        assert record.kind == "bench"
        assert record.label == "smoke"
        names = {row["name"] for row in report["workloads"]}
        assert {key.split(".")[0] for key in record.timings} == names
        assert all(
            record.metrics[f"{name}.success_rate"] == 1.0 for name in names
        )
        # Re-running the same suite lands in the same drift stream.
        run_suite("smoke", git_sha="test", registry=registry)
        first, second = registry.records()
        assert first.fingerprint == second.fingerprint
        assert first.metrics == second.metrics  # seeded: bit-reproducible
