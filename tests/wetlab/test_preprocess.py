"""Wetlab preprocessing tests."""

import random

import pytest

from repro.codec.primers import design_primer_library
from repro.dna.alphabet import random_sequence, reverse_complement
from repro.dna.fastq import FastqRecord
from repro.simulation import IIDChannel
from repro.wetlab import WetlabPreprocessor

LIBRARY = design_primer_library(2, rng=random.Random(4))


class TestAssignment:
    def test_reads_routed_to_their_pair(self, rng):
        bodies_a = [random_sequence(60, rng) for _ in range(5)]
        bodies_b = [random_sequence(60, rng) for _ in range(7)]
        reads = [LIBRARY[0].tag(b) for b in bodies_a] + [
            LIBRARY[1].tag(b) for b in bodies_b
        ]
        preprocessor = WetlabPreprocessor(LIBRARY)
        by_pair, stats = preprocessor.process(reads)
        assert sorted(by_pair[0]) == sorted(bodies_a)
        assert sorted(by_pair[1]) == sorted(bodies_b)
        assert stats.accepted == 12

    def test_mixed_orientations(self, rng):
        bodies = [random_sequence(60, rng) for _ in range(10)]
        reads = []
        for i, body in enumerate(bodies):
            strand = LIBRARY[0].tag(body)
            reads.append(reverse_complement(strand) if i % 2 else strand)
        by_pair, stats = WetlabPreprocessor(LIBRARY).process(reads)
        assert sorted(by_pair[0]) == sorted(bodies)
        assert stats.flipped == 5

    def test_junk_rejected(self, rng):
        junk = [random_sequence(100, rng) for _ in range(10)]
        by_pair, stats = WetlabPreprocessor(
            LIBRARY, max_primer_mismatches=8
        ).process(junk)
        assert stats.rejected_primer == 10
        assert not by_pair

    def test_noisy_reads_mostly_accepted(self, rng):
        channel = IIDChannel.from_total_rate(0.06)
        reads = [
            channel.transmit(LIBRARY[0].tag(random_sequence(80, rng)), rng)
            for _ in range(50)
        ]
        _, stats = WetlabPreprocessor(LIBRARY).process(reads)
        assert stats.accepted >= 45


class TestFilters:
    def test_quality_filter(self):
        strand = LIBRARY[0].tag("ACGT" * 10)
        good = FastqRecord("good", strand, [40] * len(strand))
        bad = FastqRecord("bad", strand, [5] * len(strand))
        preprocessor = WetlabPreprocessor(LIBRARY, min_mean_quality=20)
        _, stats = preprocessor.process([good, bad])
        assert stats.accepted == 1
        assert stats.rejected_quality == 1

    def test_length_filter(self, rng):
        short_body = "ACGT"
        normal_body = random_sequence(60, rng)
        preprocessor = WetlabPreprocessor(
            LIBRARY, expected_body_length=60, length_tolerance=0.2
        )
        _, stats = preprocessor.process(
            [LIBRARY[0].tag(short_body), LIBRARY[0].tag(normal_body)]
        )
        assert stats.accepted == 1
        assert stats.rejected_length == 1

    def test_per_pair_stats(self, rng):
        reads = [LIBRARY[0].tag(random_sequence(40, rng)) for _ in range(3)]
        reads += [LIBRARY[1].tag(random_sequence(40, rng)) for _ in range(2)]
        _, stats = WetlabPreprocessor(LIBRARY).process(reads)
        assert stats.per_pair == {0: 3, 1: 2}

    def test_empty_library_raises(self):
        with pytest.raises(ValueError):
            WetlabPreprocessor([])

    def test_accepts_bare_strings_and_records(self, rng):
        body = random_sequence(40, rng)
        strand = LIBRARY[0].tag(body)
        record = FastqRecord("r", strand, [40] * len(strand))
        by_pair, stats = WetlabPreprocessor(LIBRARY).process([strand, record])
        assert stats.accepted == 2
        assert by_pair[0] == [body, body]
