"""Read orientation tests."""

import random

from hypothesis import given
from hypothesis import strategies as st

from repro.codec.primers import PrimerPair, design_primer_library
from repro.dna.alphabet import random_sequence, reverse_complement
from repro.simulation import IIDChannel
from repro.wetlab import orient_read
from repro.wetlab.orientation import locate_primer_sites

PAIR = design_primer_library(1, rng=random.Random(4))[0]

dna = st.text(alphabet="ACGT", min_size=20, max_size=120)


class TestOrientRead:
    @given(dna)
    def test_forward_reads_kept(self, body):
        strand = PAIR.tag(body)
        oriented = orient_read(strand, PAIR)
        assert not oriented.flipped
        assert oriented.sequence == strand
        assert oriented.mismatches == 0

    @given(dna)
    def test_reverse_reads_flipped(self, body):
        strand = PAIR.tag(body)
        oriented = orient_read(reverse_complement(strand), PAIR)
        assert oriented.flipped
        assert oriented.sequence == strand
        assert oriented.mismatches == 0

    @given(dna)
    def test_payload_boundaries_on_clean_reads(self, body):
        strand = PAIR.tag(body)
        oriented = orient_read(strand, PAIR)
        assert oriented.payload == body

    def test_empty_read(self):
        oriented = orient_read("", PAIR)
        assert oriented.sequence == ""
        assert oriented.mismatches == 40

    def test_noisy_reads_still_orient(self, rng):
        channel = IIDChannel.from_total_rate(0.08)
        correct = 0
        for _ in range(40):
            body = random_sequence(80, rng)
            strand = PAIR.tag(body)
            noisy = channel.transmit(strand, rng)
            flipped = rng.random() < 0.5
            read = reverse_complement(noisy) if flipped else noisy
            oriented = orient_read(read, PAIR)
            correct += oriented.flipped == flipped
        assert correct >= 38


class TestLocatePrimerSites:
    def test_exact_sites(self):
        strand = PAIR.tag("ACGTACGTACGTACGTACGT")
        mismatches, start, end = locate_primer_sites(strand, PAIR)
        assert mismatches == 0
        assert (start, end) == (20, len(strand) - 20)

    def test_indel_in_forward_primer_shifts_start(self):
        body = "ACGTACGTACGTACGTACGT"
        strand = PAIR.forward[:10] + PAIR.forward[11:] + body + reverse_complement(
            PAIR.reverse
        )
        mismatches, start, end = locate_primer_sites(strand, PAIR)
        assert mismatches == 1
        assert start == 19  # one base shorter primer site
        assert strand[start:end] == body
