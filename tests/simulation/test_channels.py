"""Tests for the wetlab noise channels."""

import random

import pytest

from repro.dna.alphabet import random_sequence
from repro.dna.alignment import edit_operations
from repro.simulation import (
    ComposedChannel,
    IdentityChannel,
    IIDChannel,
    SOLQCChannel,
    SOLQCRates,
    WetlabReferenceChannel,
)


def error_rates(channel, strand, reads, rng):
    """Empirical (ins, del, sub) rates per reference base."""
    ins = dele = sub = 0
    for _ in range(reads):
        noisy = channel.transmit(strand, rng)
        for op in edit_operations(strand, noisy):
            if op.kind == "ins":
                ins += 1
            elif op.kind == "del":
                dele += 1
            elif op.kind == "sub":
                sub += 1
    denom = reads * len(strand)
    return ins / denom, dele / denom, sub / denom


class TestIdentity:
    def test_noiseless(self, rng):
        strand = random_sequence(50, rng)
        assert IdentityChannel().transmit(strand, rng) == strand


class TestIIDChannel:
    def test_zero_rates_are_noiseless(self, rng):
        channel = IIDChannel(0.0, 0.0, 0.0)
        strand = random_sequence(60, rng)
        assert channel.transmit(strand, rng) == strand

    def test_validation(self):
        with pytest.raises(ValueError):
            IIDChannel(p_ins=-0.1)
        with pytest.raises(ValueError):
            IIDChannel(p_ins=0.5, p_del=0.4, p_sub=0.3)

    def test_from_total_rate(self):
        channel = IIDChannel.from_total_rate(0.09)
        assert channel.p_ins == pytest.approx(0.03)
        assert channel.total_rate == pytest.approx(0.09)

    def test_empirical_rates_near_nominal(self, rng):
        channel = IIDChannel(p_ins=0.02, p_del=0.03, p_sub=0.04)
        strand = random_sequence(150, rng)
        ins, dele, sub = error_rates(channel, strand, 150, rng)
        assert ins == pytest.approx(0.02, abs=0.01)
        assert dele == pytest.approx(0.03, abs=0.01)
        assert sub == pytest.approx(0.04, abs=0.012)

    def test_deletion_only_shortens(self, rng):
        channel = IIDChannel(p_ins=0.0, p_del=0.2, p_sub=0.0)
        strand = random_sequence(100, rng)
        assert all(
            len(channel.transmit(strand, rng)) <= len(strand) for _ in range(20)
        )

    def test_transmit_many(self, rng):
        channel = IIDChannel.from_total_rate(0.06)
        reads = channel.transmit_many("ACGT" * 10, 7, rng)
        assert len(reads) == 7
        with pytest.raises(ValueError):
            channel.transmit_many("ACGT", -1, rng)


class TestSOLQCChannel:
    def test_missing_base_raises(self):
        with pytest.raises(ValueError):
            SOLQCChannel({"A": SOLQCRates()})

    def test_self_substitution_rejected(self):
        profile = {
            base: SOLQCRates(substitution_distribution={base: 1.0})
            for base in "ACGT"
        }
        with pytest.raises(ValueError):
            SOLQCChannel(profile)

    def test_base_conditioning(self, rng):
        # G configured to always delete, A never: outputs keep As, lose Gs.
        profile = {
            "A": SOLQCRates(pre_insertion=0.0, deletion=0.0, substitution=0.0),
            "C": SOLQCRates(pre_insertion=0.0, deletion=0.0, substitution=0.0),
            "G": SOLQCRates(pre_insertion=0.0, deletion=1.0, substitution=0.0),
            "T": SOLQCRates(pre_insertion=0.0, deletion=0.0, substitution=0.0),
        }
        channel = SOLQCChannel(profile)
        assert channel.transmit("AGAGAG", rng) == "AAA"

    def test_scaled_profile(self, rng):
        mild = SOLQCChannel.scaled(0.5)
        for base in "ACGT":
            assert mild.profile[base].deletion <= SOLQCChannel().profile[base].deletion

    def test_pre_insertion_only(self, rng):
        # With insertion probability 1 and no other errors, every base gets
        # exactly one inserted base before it (never after the last base).
        profile = {
            base: SOLQCRates(pre_insertion=1.0, deletion=0.0, substitution=0.0)
            for base in "ACGT"
        }
        channel = SOLQCChannel(profile)
        noisy = channel.transmit("ACGT", rng)
        assert len(noisy) == 8
        assert noisy[1] == "A" and noisy[3] == "C" and noisy[7] == "T"


class TestWetlabReferenceChannel:
    def test_positional_multiplier_rises_at_end(self):
        channel = WetlabReferenceChannel()
        length = 100
        assert channel.position_multiplier(length - 1, length) > channel.position_multiplier(
            length // 2, length
        )

    def test_positional_multiplier_elevated_at_start(self):
        channel = WetlabReferenceChannel()
        assert channel.position_multiplier(0, 100) > channel.position_multiplier(
            20, 100
        )

    def test_end_errors_exceed_middle_errors(self, rng):
        channel = WetlabReferenceChannel()
        strand = random_sequence(120, rng)
        middle_errors = end_errors = 0
        for _ in range(300):
            noisy = channel.transmit(strand, rng)
            for op in edit_operations(strand, noisy):
                if op.kind == "match":
                    continue
                if 40 <= op.ref_pos < 60:
                    middle_errors += 1
                elif op.ref_pos >= 100:
                    end_errors += 1
        assert end_errors > middle_errors

    def test_truncation_occurs(self, rng):
        channel = WetlabReferenceChannel(p_truncate=1.0, truncate_window=0.5)
        strand = random_sequence(100, rng)
        lengths = [len(channel.transmit(strand, rng)) for _ in range(20)]
        assert all(length < 100 for length in lengths)

    def test_validation(self):
        with pytest.raises(ValueError):
            WetlabReferenceChannel(p_del=1.5)
        with pytest.raises(ValueError):
            WetlabReferenceChannel(burst_continue=1.0)

    def test_single_base_strand(self, rng):
        channel = WetlabReferenceChannel()
        for _ in range(10):
            channel.transmit("A", rng)  # must not raise


class TestComposedChannel:
    def test_stages_apply_in_order(self, rng):
        composed = ComposedChannel([IdentityChannel(), IdentityChannel()])
        assert composed.transmit("ACGT", rng) == "ACGT"

    def test_noise_accumulates(self, rng):
        single = IIDChannel(p_ins=0.0, p_del=0.05, p_sub=0.0)
        composed = ComposedChannel([single, single])
        strand = random_sequence(400, rng)
        single_lengths = [len(single.transmit(strand, rng)) for _ in range(30)]
        composed_lengths = [len(composed.transmit(strand, rng)) for _ in range(30)]
        assert sum(composed_lengths) < sum(single_lengths)

    def test_empty_stages_raise(self):
        with pytest.raises(ValueError):
            ComposedChannel([])
