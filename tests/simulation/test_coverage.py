"""Tests for coverage models and whole-pool sequencing."""

import random

import pytest

from repro.dna.alphabet import random_sequence
from repro.simulation import (
    ConstantCoverage,
    IdentityChannel,
    IIDChannel,
    InjectedDropoutCoverage,
    NegativeBinomialCoverage,
    PoissonCoverage,
    sequence_pool,
)


class TestCoverageModels:
    def test_constant(self, rng):
        model = ConstantCoverage(10)
        assert all(model.sample(rng) == 10 for _ in range(5))

    def test_constant_validation(self):
        with pytest.raises(ValueError):
            ConstantCoverage(-1)

    def test_poisson_mean(self, rng):
        model = PoissonCoverage(8.0)
        samples = [model.sample(rng) for _ in range(2000)]
        assert sum(samples) / len(samples) == pytest.approx(8.0, rel=0.1)

    def test_poisson_validation(self):
        with pytest.raises(ValueError):
            PoissonCoverage(-1.0)

    def test_negative_binomial_mean_and_overdispersion(self, rng):
        model = NegativeBinomialCoverage(10.0, dispersion=2.0)
        samples = [model.sample(rng) for _ in range(3000)]
        mean = sum(samples) / len(samples)
        variance = sum((s - mean) ** 2 for s in samples) / len(samples)
        assert mean == pytest.approx(10.0, rel=0.15)
        assert variance > mean * 1.5  # overdispersed vs Poisson

    def test_negative_binomial_validation(self):
        with pytest.raises(ValueError):
            NegativeBinomialCoverage(10.0, dispersion=0.0)

    def test_sample_for_default_matches_sample(self):
        # The index-aware hook must consume the RNG exactly like sample()
        # so existing seeds keep reproducing bit-for-bit.
        model = NegativeBinomialCoverage(6.0, dispersion=2.0)
        plain = [model.sample(random.Random(42)) for _ in range(5)]
        indexed = [
            model.sample_for(index, random.Random(42)) for index in range(5)
        ]
        assert indexed == plain


class TestInjectedDropout:
    def test_targets_exact_strands(self, rng):
        model = InjectedDropoutCoverage(ConstantCoverage(4), [1, 3])
        counts = [model.sample_for(index, rng) for index in range(5)]
        assert counts == [4, 0, 4, 0, 4]

    def test_other_strands_keep_the_base_stream(self):
        base = NegativeBinomialCoverage(6.0, dispersion=2.0)
        injected = InjectedDropoutCoverage(base, [2])
        for index in (0, 1, 3):
            assert injected.sample_for(index, random.Random(7)) == base.sample_for(
                index, random.Random(7)
            )

    def test_sequence_pool_records_injected_dropouts(self, rng):
        references = [random_sequence(40, rng) for _ in range(10)]
        run = sequence_pool(
            references,
            IdentityChannel(),
            InjectedDropoutCoverage(ConstantCoverage(3), [0, 7]),
            seed=3,
        )
        assert sorted(run.dropouts) == [0, 7]
        assert 0 not in run.origins and 7 not in run.origins


class TestSequencePool:
    def test_ground_truth_consistency(self, rng):
        references = [random_sequence(40, rng) for _ in range(20)]
        run = sequence_pool(references, IdentityChannel(), ConstantCoverage(5), rng)
        assert len(run.reads) == 100
        assert run.coverage == pytest.approx(5.0)
        for read, origin in zip(run.reads, run.origins):
            assert read == references[origin]

    def test_true_clusters_partition_reads(self, rng):
        references = [random_sequence(40, rng) for _ in range(10)]
        run = sequence_pool(
            references, IIDChannel.from_total_rate(0.06), ConstantCoverage(4), rng
        )
        clusters = run.true_clusters()
        total = sum(len(members) for members in clusters.values())
        assert total == len(run.reads)
        for origin, members in clusters.items():
            assert all(run.origins[i] == origin for i in members)

    def test_dropouts_recorded(self, rng):
        references = [random_sequence(40, rng) for _ in range(30)]
        run = sequence_pool(references, IdentityChannel(), PoissonCoverage(0.5), rng)
        assert run.dropouts  # mean 0.5 drops many strands
        for index in run.dropouts:
            assert index not in run.true_clusters()

    def test_shuffling_mixes_origins(self, rng):
        references = [random_sequence(30, rng) for _ in range(50)]
        run = sequence_pool(references, IdentityChannel(), ConstantCoverage(4), rng)
        # Sorted origins would mean no shuffle; with 200 reads this is
        # astronomically unlikely when shuffled.
        assert run.origins != sorted(run.origins)

    def test_no_shuffle_option(self, rng):
        references = [random_sequence(30, rng) for _ in range(10)]
        run = sequence_pool(
            references, IdentityChannel(), ConstantCoverage(3), rng, shuffle=False
        )
        assert run.origins == sorted(run.origins)

    def test_empty_coverage(self, rng):
        run = sequence_pool([], IdentityChannel(), ConstantCoverage(3), rng)
        assert run.reads == [] and run.coverage == 0.0


class TestPerReadEditDistances:
    def test_identity_channel_distances_are_zero(self, rng):
        from repro.simulation.observed import per_read_edit_distances

        references = [random_sequence(40, rng) for _ in range(5)]
        run = sequence_pool(references, IdentityChannel(), ConstantCoverage(3), rng)
        assert per_read_edit_distances(run) == [0] * len(run.reads)

    def test_sharded_result_matches_serial(self, rng):
        from repro.parallel import WorkerPool
        from repro.simulation.observed import per_read_edit_distances

        references = [random_sequence(50, rng) for _ in range(20)]
        run = sequence_pool(
            references, IIDChannel.from_total_rate(0.08), ConstantCoverage(4), rng
        )
        serial = per_read_edit_distances(run)
        with WorkerPool(3, min_items=1) as pool:
            sharded = per_read_edit_distances(run, pool=pool)
        assert sharded == serial
        assert any(distance > 0 for distance in serial)

    def test_batched_matches_scalar_pair_loop(self, rng):
        # The origin-grouped uint64-lane path must reproduce the old
        # per-pair levenshtein loop exactly, in read order.
        from repro.dna.distance import levenshtein_distance
        from repro.simulation.observed import per_read_edit_distances

        references = [random_sequence(70, rng) for _ in range(15)]
        run = sequence_pool(
            references, IIDChannel.from_total_rate(0.1), ConstantCoverage(5), rng
        )
        expected = [
            levenshtein_distance(read, run.references[origin])
            for read, origin in zip(run.reads, run.origins)
        ]
        assert per_read_edit_distances(run) == expected

    def test_read_pool_cached_on_run(self, rng):
        references = [random_sequence(30, rng) for _ in range(4)]
        run = sequence_pool(references, IdentityChannel(), ConstantCoverage(2), rng)
        pool = run.read_pool()
        assert pool is not None
        assert pool.to_strings() == run.reads
        assert run.read_pool() is pool
        # Mutating the read list invalidates the cache.
        run.reads = list(run.reads)
        assert run.read_pool() is not pool


class TestSequencePoolSharding:
    def test_pool_does_not_change_results(self, rng):
        from repro.parallel import WorkerPool

        references = [random_sequence(60, rng) for _ in range(100)]
        channel = IIDChannel.from_total_rate(0.08)
        serial = sequence_pool(
            references, channel, ConstantCoverage(4), seed=99
        )
        with WorkerPool(3, min_items=1) as pool:
            sharded = sequence_pool(
                references, channel, ConstantCoverage(4), seed=99, pool=pool
            )
        assert pool.last_shards == 3
        assert sharded.reads == serial.reads
        assert sharded.origins == serial.origins
        assert sharded.dropouts == serial.dropouts

    def test_seed_governs_output(self, rng):
        references = [random_sequence(40, rng) for _ in range(20)]
        channel = IIDChannel.from_total_rate(0.08)
        a = sequence_pool(references, channel, ConstantCoverage(3), seed=5)
        b = sequence_pool(references, channel, ConstantCoverage(3), seed=5)
        c = sequence_pool(references, channel, ConstantCoverage(3), seed=6)
        assert a.reads == b.reads
        assert a.reads != c.reads
