"""Tests for the alignment-fitted channel model."""

import random

import pytest

from repro.dna.alphabet import random_sequence
from repro.dna.alignment import edit_operations
from repro.simulation import IIDChannel, LearnedProfileChannel, WetlabReferenceChannel
from repro.simulation.learned_profile import fit_learned_profile


def make_pairs(channel, count, length, rng):
    pairs = []
    for _ in range(count):
        clean = random_sequence(length, rng)
        pairs.append((clean, channel.transmit(clean, rng)))
    return pairs


class TestFitting:
    def test_unfitted_transmit_raises(self, rng):
        with pytest.raises(RuntimeError):
            LearnedProfileChannel().transmit("ACGT", rng)

    def test_empty_pairs_raise(self):
        with pytest.raises(ValueError):
            LearnedProfileChannel().fit([])

    def test_empty_clean_strand_raises(self):
        with pytest.raises(ValueError):
            LearnedProfileChannel().fit([("", "ACGT")])

    def test_invalid_bins(self):
        with pytest.raises(ValueError):
            LearnedProfileChannel(bins=0)

    def test_fit_returns_self(self, rng):
        pairs = make_pairs(IIDChannel.from_total_rate(0.06), 20, 60, rng)
        channel = LearnedProfileChannel(bins=5)
        assert channel.fit(pairs) is channel


class TestFidelity:
    def test_learns_overall_error_rate(self, rng):
        source = IIDChannel(p_ins=0.01, p_del=0.03, p_sub=0.02)
        pairs = make_pairs(source, 300, 100, rng)
        learned = fit_learned_profile(pairs, bins=10)

        strand = random_sequence(100, rng)
        dels = subs = 0
        trials = 200
        for _ in range(trials):
            noisy = learned.transmit(strand, rng)
            for op in edit_operations(strand, noisy):
                if op.kind == "del":
                    dels += 1
                elif op.kind == "sub":
                    subs += 1
        assert dels / (trials * 100) == pytest.approx(0.03, abs=0.015)
        assert subs / (trials * 100) == pytest.approx(0.02, abs=0.015)

    def test_learns_positional_skew(self, rng):
        source = WetlabReferenceChannel()
        pairs = make_pairs(source, 400, 100, rng)
        learned = fit_learned_profile(pairs, bins=20)
        # The fitted per-bin deletion rate must rise toward the 3' end,
        # mirroring the hidden channel's ramp.
        early = sum(learned.p_del[2:6]) / 4
        late = sum(learned.p_del[-4:]) / 4
        assert late > early

    def test_learns_substitution_bias(self, rng):
        # Source substitutes A only with G.
        from repro.simulation import SOLQCRates, SOLQCChannel

        profile = {
            "A": SOLQCRates(
                pre_insertion=0.0,
                deletion=0.0,
                substitution=0.3,
                substitution_distribution={"G": 1.0},
            ),
            "C": SOLQCRates(pre_insertion=0.0, deletion=0.0, substitution=0.0),
            "G": SOLQCRates(pre_insertion=0.0, deletion=0.0, substitution=0.0),
            "T": SOLQCRates(pre_insertion=0.0, deletion=0.0, substitution=0.0),
        }
        source = SOLQCChannel(profile)
        pairs = make_pairs(source, 150, 80, rng)
        learned = fit_learned_profile(pairs, bins=4)
        alternatives, weights = learned.sub_tables["A"]
        assert weights[alternatives.index("G")] > 0.8

    def test_transmit_produces_dna(self, rng):
        pairs = make_pairs(IIDChannel.from_total_rate(0.1), 50, 60, rng)
        learned = fit_learned_profile(pairs, bins=8)
        noisy = learned.transmit(random_sequence(60, rng), rng)
        assert set(noisy) <= set("ACGT")
