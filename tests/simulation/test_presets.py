"""Tests for the Illumina/Nanopore channel presets."""

from repro.dna.alphabet import random_sequence
from repro.dna.alignment import edit_operations
from repro.simulation import WetlabReferenceChannel


def total_error_rate(channel, strand, rng, reads=60):
    errors = positions = 0
    for _ in range(reads):
        noisy = channel.transmit(strand, rng)
        for op in edit_operations(strand, noisy):
            if op.kind != "ins":
                positions += 1
            if op.kind != "match":
                errors += 1
    return errors / positions


class TestPresets:
    def test_nanopore_noisier_than_illumina(self, rng):
        strand = random_sequence(150, rng)
        illumina = total_error_rate(WetlabReferenceChannel.illumina(), strand, rng)
        nanopore = total_error_rate(WetlabReferenceChannel.nanopore(), strand, rng)
        assert nanopore > 4 * illumina

    def test_illumina_rate_below_one_percent_scale(self, rng):
        strand = random_sequence(150, rng)
        rate = total_error_rate(WetlabReferenceChannel.illumina(), strand, rng)
        assert rate < 0.03

    def test_nanopore_indel_dominated(self, rng):
        channel = WetlabReferenceChannel.nanopore()
        strand = random_sequence(150, rng)
        indels = subs = 0
        for _ in range(60):
            for op in edit_operations(strand, channel.transmit(strand, rng)):
                if op.kind in ("ins", "del"):
                    indels += 1
                elif op.kind == "sub":
                    subs += 1
        assert indels > subs

    def test_nanopore_truncates_more(self, rng):
        strand = random_sequence(200, rng)
        def short_fraction(channel):
            lengths = [len(channel.transmit(strand, rng)) for _ in range(150)]
            return sum(1 for l in lengths if l < 170) / len(lengths)
        assert short_fraction(WetlabReferenceChannel.nanopore()) > short_fraction(
            WetlabReferenceChannel.illumina()
        )
