"""Tests for paired dataset generation and splitting."""

import pytest

from repro.simulation import IIDChannel, make_paired_dataset


class TestMakePairedDataset:
    def test_split_partitions_clusters(self, rng):
        dataset = make_paired_dataset(
            IIDChannel.from_total_rate(0.06),
            num_clusters=50,
            strand_length=30,
            reads_per_cluster=3,
            rng=rng,
        )
        all_indices = (
            set(dataset.train_indices)
            | set(dataset.val_indices)
            | set(dataset.test_indices)
        )
        assert all_indices == set(range(50))
        assert not set(dataset.train_indices) & set(dataset.test_indices)
        assert not set(dataset.train_indices) & set(dataset.val_indices)

    def test_split_fractions(self, rng):
        dataset = make_paired_dataset(
            IIDChannel.from_total_rate(0.06),
            num_clusters=100,
            strand_length=20,
            reads_per_cluster=2,
            split=(0.8, 0.1, 0.1),
            rng=rng,
        )
        assert len(dataset.train_indices) == 80
        assert len(dataset.val_indices) == 10
        assert len(dataset.test_indices) == 10

    def test_pairs_share_cluster_clean_strand(self, rng):
        dataset = make_paired_dataset(
            IIDChannel.from_total_rate(0.06),
            num_clusters=10,
            strand_length=25,
            reads_per_cluster=4,
            rng=rng,
        )
        assert len(dataset.train_pairs) == len(dataset.train_indices) * 4
        cleans = {clean for clean, _ in dataset.train_pairs}
        expected = {dataset.clusters[i][0] for i in dataset.train_indices}
        assert cleans == expected

    def test_no_read_leakage_across_splits(self, rng):
        dataset = make_paired_dataset(
            IIDChannel.from_total_rate(0.06),
            num_clusters=40,
            strand_length=25,
            reads_per_cluster=2,
            rng=rng,
        )
        train_cleans = {clean for clean, _ in dataset.train_pairs}
        test_cleans = {clean for clean, _ in dataset.test_pairs}
        assert not train_cleans & test_cleans

    def test_validation(self, rng):
        channel = IIDChannel.from_total_rate(0.06)
        with pytest.raises(ValueError):
            make_paired_dataset(channel, 0, 10, 1, rng=rng)
        with pytest.raises(ValueError):
            make_paired_dataset(channel, 5, 10, 0, rng=rng)
        with pytest.raises(ValueError):
            make_paired_dataset(channel, 5, 10, 1, split=(0.5, 0.2, 0.2), rng=rng)
