"""Per-index error profile tests."""

import numpy as np
import pytest

from repro.analysis import (
    fidelity_metrics,
    per_index_error_profile,
    perfect_reconstructions,
)
from repro.analysis.error_profile import ErrorProfile, smooth_profile


class TestPerIndexProfile:
    def test_perfect_reconstructions(self):
        refs = ["ACGT", "TTTT"]
        profile = per_index_error_profile(refs, refs)
        assert profile.perfect == 2
        assert profile.mean_rate == 0.0

    def test_single_position_error(self):
        profile = per_index_error_profile(["ACGT"], ["ACTT"])
        assert profile.rates.tolist() == [0.0, 0.0, 1.0, 0.0]
        assert profile.perfect == 0

    def test_short_reconstruction_counts_tail_errors(self):
        profile = per_index_error_profile(["ACGT"], ["AC"])
        assert profile.rates.tolist() == [0.0, 0.0, 1.0, 1.0]

    def test_mismatched_counts_raise(self):
        with pytest.raises(ValueError):
            per_index_error_profile(["ACGT"], [])

    def test_unequal_reference_lengths_raise(self):
        with pytest.raises(ValueError):
            per_index_error_profile(["ACGT", "AC"], ["ACGT", "AC"])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            per_index_error_profile([], [])

    def test_perfect_count_helper(self):
        assert perfect_reconstructions(["AA", "CC"], ["AA", "CG"]) == 1


class TestFidelityMetrics:
    def test_table_one_metrics(self):
        real = ErrorProfile(rates=np.array([0.1, 0.2]), strands=10, perfect=5)
        simulated = ErrorProfile(rates=np.array([0.1, 0.1]), strands=10, perfect=7)
        metrics = fidelity_metrics("sim", simulated, real)
        assert metrics.mean_error_rate == pytest.approx(0.1)
        assert metrics.deviation_from_real == pytest.approx(0.05)
        assert metrics.perfect_strands == 7
        assert len(metrics.as_row()) == 4

    def test_deviation_requires_same_length(self):
        a = ErrorProfile(rates=np.array([0.1]), strands=1, perfect=0)
        b = ErrorProfile(rates=np.array([0.1, 0.2]), strands=1, perfect=0)
        with pytest.raises(ValueError, match="1 vs 2"):
            a.deviation_from(b)
        # ...in either direction.
        with pytest.raises(ValueError, match="2 vs 1"):
            b.deviation_from(a)

    def test_deviation_is_symmetric(self):
        a = ErrorProfile(rates=np.array([0.1, 0.3]), strands=1, perfect=0)
        b = ErrorProfile(rates=np.array([0.2, 0.1]), strands=1, perfect=0)
        assert a.deviation_from(b) == pytest.approx(0.15)
        assert a.deviation_from(b) == b.deviation_from(a)

    def test_deviation_from_self_is_zero(self):
        a = ErrorProfile(rates=np.array([0.1, 0.3]), strands=1, perfect=0)
        assert a.deviation_from(a) == 0.0


class TestSmoothing:
    def test_constant_series_unchanged(self):
        assert smooth_profile([0.5] * 5, window=3) == [0.5] * 5

    def test_window_validation(self):
        with pytest.raises(ValueError):
            smooth_profile([0.1], window=0)

    def test_smooths_spike(self):
        smoothed = smooth_profile([0, 0, 1, 0, 0], window=3)
        assert smoothed[2] == pytest.approx(1 / 3)
