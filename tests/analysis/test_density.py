"""Information-density accounting tests."""

import pytest

from repro.analysis import density_report
from repro.codec import EncodingParameters
from repro.codec.constrained import ROTATING_CODE_DENSITY
from repro.codec.primers import PrimerPair


class TestDensityReport:
    def test_fractions_consistent(self):
        params = EncodingParameters()
        report = density_report(params)
        assert 0 < report.net_bits_per_nt < 2.0
        overhead_free = (
            report.payload_fraction + report.index_fraction + report.primer_fraction
        )
        assert overhead_free <= 1.0

    def test_primerless_has_zero_primer_fraction(self):
        report = density_report(EncodingParameters())
        assert report.primer_fraction == 0.0

    def test_primers_cost_density(self):
        pair = PrimerPair("A" * 20, "C" * 20)
        with_primers = density_report(EncodingParameters(primer_pair=pair))
        without = density_report(EncodingParameters())
        assert with_primers.net_bits_per_nt < without.net_bits_per_nt
        assert with_primers.primer_fraction > 0

    def test_more_parity_lowers_density(self):
        low = density_report(
            EncodingParameters(data_columns=60, parity_columns=10)
        )
        high = density_report(
            EncodingParameters(data_columns=60, parity_columns=40)
        )
        assert high.net_bits_per_nt < low.net_bits_per_nt
        assert high.parity_molecule_fraction > low.parity_molecule_fraction

    def test_constrained_mapping_lowers_density(self):
        params = EncodingParameters()
        unconstrained = density_report(params)
        constrained = density_report(
            params, mapping_bits_per_nt=ROTATING_CODE_DENSITY
        )
        assert constrained.net_bits_per_nt < unconstrained.net_bits_per_nt

    def test_exact_accounting_small_case(self):
        # 1 byte payload, 1 data + 1 parity column, 1 index byte, no primers:
        # strand = 8 nt, unit = 16 nt, payload bits = 8.
        params = EncodingParameters(
            payload_bytes=1, data_columns=1, parity_columns=1, index_bytes=1
        )
        report = density_report(params)
        assert report.unit_nt == 16
        assert report.unit_payload_bits == 8
        assert report.net_bits_per_nt == pytest.approx(0.5)

    def test_invalid_mapping_density(self):
        with pytest.raises(ValueError):
            density_report(EncodingParameters(), mapping_bits_per_nt=0)

    def test_as_rows(self):
        rows = density_report(EncodingParameters()).as_rows()
        assert len(rows) == 5
