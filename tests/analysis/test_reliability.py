"""Reliability-profile estimation tests."""

import random

import pytest

from repro.analysis.reliability import (
    pilot_row_reliability,
    profile_to_row_reliability,
)
from repro.reconstruction import DoubleSidedBMAReconstructor
from repro.simulation import IIDChannel, WetlabReferenceChannel


class TestProfileConversion:
    def test_row_scores_average_nucleotide_rates(self):
        # 0 index nt, 2 rows of 4 nt each; no smoothing.
        rates = [0.0, 0.0, 0.0, 0.0, 0.2, 0.2, 0.2, 0.2]
        scores = profile_to_row_reliability(rates, 2, 0, smoothing_window=1)
        assert scores[0] == pytest.approx(1.0)
        assert scores[1] == pytest.approx(0.8)

    def test_index_region_excluded(self):
        rates = [0.9] * 4 + [0.1] * 4  # terrible index region, fine payload
        scores = profile_to_row_reliability(rates, 1, 4, smoothing_window=1)
        assert scores == [pytest.approx(0.9)]

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            profile_to_row_reliability([0.1] * 10, 2, 4)

    def test_invalid_rows_raise(self):
        with pytest.raises(ValueError):
            profile_to_row_reliability([0.1] * 8, 0, 8)


class TestPilot:
    def test_pilot_detects_middle_skew(self):
        rng = random.Random(4)
        scores = pilot_row_reliability(
            IIDChannel.from_total_rate(0.09),
            DoubleSidedBMAReconstructor(),
            payload_bytes=20,
            index_nt=12,
            pilot_strands=60,
            coverage=8,
            rng=rng,
        )
        assert len(scores) == 20
        # DBMA concentrates errors in the middle rows.
        middle = sum(scores[8:12]) / 4
        edges = (sum(scores[:3]) + sum(scores[-3:])) / 6
        assert middle < edges

    def test_scores_bounded(self):
        rng = random.Random(4)
        scores = pilot_row_reliability(
            WetlabReferenceChannel(),
            DoubleSidedBMAReconstructor(),
            payload_bytes=10,
            pilot_strands=20,
            coverage=6,
            rng=rng,
        )
        assert all(0.0 <= score <= 1.0 for score in scores)

    def test_validation(self):
        with pytest.raises(ValueError):
            pilot_row_reliability(
                IIDChannel.from_total_rate(0.05),
                DoubleSidedBMAReconstructor(),
                payload_bytes=10,
                pilot_strands=0,
            )
