"""Report formatting tests."""

import pytest

from repro.analysis import format_series, format_table
from repro.analysis.reporting import sparkline


class TestFormatTable:
    def test_alignment(self):
        table = format_table(["name", "value"], [["a", "1"], ["long-name", "22"]])
        lines = table.splitlines()
        assert lines[0].startswith("name")
        assert all(len(line) == len(lines[0]) or "-+-" in line for line in lines)

    def test_title(self):
        assert format_table(["x"], [["1"]], title="Table I").startswith("Table I")

    def test_ragged_rows_raise(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only one"]])

    def test_empty_rows(self):
        table = format_table(["a"], [])
        assert "a" in table

    def test_empty_rows_renders_header_and_divider_only(self):
        table = format_table(["stage", "s"], [], title="empty")
        lines = table.splitlines()
        assert lines == ["empty", "stage | s", "------+--"]

    def test_empty_rows_width_follows_headers(self):
        table = format_table(["a-very-long-header", "x"], [])
        header = table.splitlines()[0]
        assert header.startswith("a-very-long-header")


class TestFormatSeries:
    def test_values_formatted(self):
        series = format_series("err", [0.1, 0.25], precision=2)
        assert "err[0] = 0.10" in series
        assert "err[1] = 0.25" in series

    def test_stride(self):
        series = format_series("s", [1.0, 2.0, 3.0, 4.0], stride=2)
        assert "s[0]" in series and "s[2]" in series
        assert "s[1]" not in series

    def test_invalid_stride(self):
        with pytest.raises(ValueError):
            format_series("s", [1.0], stride=0)


class TestSparkline:
    def test_shape(self):
        line = sparkline([0.0, 0.5, 1.0])
        assert len(line) == 3
        assert line[0] == " " and line[-1] == "@"

    def test_empty(self):
        assert sparkline([]) == ""

    def test_constant(self):
        assert set(sparkline([1.0, 1.0])) == {" "}

    def test_subsampling(self):
        assert len(sparkline(list(range(1000)), width=50)) == 50
