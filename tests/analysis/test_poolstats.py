"""Pool synthesis-screen tests."""

import random

import pytest

from repro.analysis.poolstats import pool_statistics
from repro.codec import DNAEncoder, EncodingParameters, design_primer_library


class TestPoolStatistics:
    def test_whitened_pool_is_statistically_healthy(self):
        # Whitening cannot forbid long runs outright (that would be
        # constrained coding); it makes them rare and short.
        pool = DNAEncoder(EncodingParameters()).encode(bytes(4000))
        stats = pool_statistics(pool.references)
        assert stats.gc_violations == 0
        assert 0.4 < stats.gc_mean < 0.6
        assert stats.homopolymer_violations / stats.strands < 0.05
        assert stats.homopolymer_max <= 10

    def test_unwhitened_pathological_pool_flagged(self):
        params = EncodingParameters(randomize=False)
        pool = DNAEncoder(params).encode(bytes(4000))  # all-zero payloads
        whitened = DNAEncoder(EncodingParameters()).encode(bytes(4000))
        stats = pool_statistics(pool.references)
        healthy = pool_statistics(whitened.references)
        assert stats.homopolymer_violations > healthy.homopolymer_violations
        assert stats.homopolymer_max > healthy.homopolymer_max
        assert not stats.clean

    def test_gc_violations_counted(self):
        stats = pool_statistics(["GCGCGCGC", "ATATATAT", "ACGTACGT"])
        assert stats.gc_violations == 2
        assert stats.gc_min == 0.0
        assert stats.gc_max == 1.0

    def test_histogram_covers_all_strands(self):
        stats = pool_statistics(["ACGT", "AACC", "AAAA"])
        assert sum(stats.homopolymer_histogram.values()) == 3
        assert stats.homopolymer_histogram[4] == 1

    def test_primer_collisions(self):
        pairs = design_primer_library(1, rng=random.Random(2))
        colliding = "ACGT" + pairs[0].forward + "TGCA"
        stats = pool_statistics(
            [colliding], foreign_primers=pairs, primer_min_distance=4
        )
        assert stats.primer_collisions == 1
        assert not stats.clean

    def test_random_strands_do_not_collide(self, rng):
        pairs = design_primer_library(1, rng=random.Random(2))
        from repro.dna.alphabet import random_sequence

        strands = [random_sequence(80, rng) for _ in range(20)]
        stats = pool_statistics(
            strands, foreign_primers=pairs, primer_min_distance=4
        )
        assert stats.primer_collisions == 0

    def test_empty_pool_raises(self):
        with pytest.raises(ValueError):
            pool_statistics([])
