"""CLI tests: every subcommand, chained the way a user would."""

import json

import pytest

from repro.cli import main


@pytest.fixture
def payload(tmp_path):
    path = tmp_path / "input.bin"
    path.write_bytes(bytes((i * 37) % 256 for i in range(500)))
    return path


def run(*argv) -> int:
    return main([str(arg) for arg in argv])


ENCODING_ARGS = ("--data-columns", 20, "--parity-columns", 8)


class TestEncodeDecode:
    def test_encode_writes_strands_and_params(self, payload, tmp_path):
        strands = tmp_path / "strands.txt"
        assert run("encode", payload, strands, *ENCODING_ARGS) == 0
        lines = strands.read_text().splitlines()
        assert lines and all(set(line) <= set("ACGT") for line in lines)
        params = json.loads((tmp_path / "strands.txt.params.json").read_text())
        assert params["data_columns"] == 20
        assert params["num_units"] >= 1

    def test_clean_roundtrip(self, payload, tmp_path):
        strands = tmp_path / "strands.txt"
        recovered = tmp_path / "out.bin"
        run("encode", payload, strands, *ENCODING_ARGS)
        assert (
            run(
                "decode",
                strands,
                recovered,
                "--params",
                tmp_path / "strands.txt.params.json",
            )
            == 0
        )
        assert recovered.read_bytes() == payload.read_bytes()

    def test_decode_reports_failure_exit_code(self, payload, tmp_path):
        strands = tmp_path / "strands.txt"
        run("encode", payload, strands, *ENCODING_ARGS)
        # Keep only a third of the strands: beyond erasure capability.
        lines = strands.read_text().splitlines()
        strands.write_text("\n".join(lines[::3]) + "\n")
        code = run(
            "decode",
            strands,
            tmp_path / "out.bin",
            "--params",
            tmp_path / "strands.txt.params.json",
        )
        assert code == 1


class TestStageChain:
    def test_full_chain(self, payload, tmp_path):
        strands = tmp_path / "strands.txt"
        reads = tmp_path / "reads.txt"
        clusters = tmp_path / "clusters.txt"
        consensus = tmp_path / "consensus.txt"
        recovered = tmp_path / "out.bin"

        run("encode", payload, strands, *ENCODING_ARGS)
        assert (
            run(
                "simulate",
                strands,
                reads,
                "--channel",
                "iid",
                "--error-rate",
                0.04,
                "--coverage",
                8,
                "--seed",
                3,
            )
            == 0
        )
        assert run("cluster", reads, clusters, "--seed", 2) == 0
        assert (
            run(
                "reconstruct",
                reads,
                clusters,
                consensus,
                "--length",
                132,
                "--algorithm",
                "nwa",
            )
            == 0
        )
        assert (
            run(
                "decode",
                consensus,
                recovered,
                "--params",
                tmp_path / "strands.txt.params.json",
            )
            == 0
        )
        assert recovered.read_bytes() == payload.read_bytes()

    def test_cluster_file_format(self, payload, tmp_path):
        strands = tmp_path / "strands.txt"
        reads = tmp_path / "reads.txt"
        clusters = tmp_path / "clusters.txt"
        run("encode", payload, strands, *ENCODING_ARGS)
        run("simulate", strands, reads, "--coverage", 4, "--seed", 1)
        run("cluster", reads, clusters)
        indices = [
            int(token)
            for line in clusters.read_text().splitlines()
            for token in line.split()
        ]
        assert sorted(indices) == list(range(len(reads.read_text().splitlines())))


class TestPipelineCommand:
    def test_roundtrip(self, payload, tmp_path, capsys):
        recovered = tmp_path / "out.bin"
        code = run(
            "pipeline",
            payload,
            recovered,
            *ENCODING_ARGS,
            "--coverage",
            8,
            "--error-rate",
            0.04,
        )
        assert code == 0
        assert recovered.read_bytes() == payload.read_bytes()
        output = capsys.readouterr().out
        assert "pipeline latency" in output
        assert "exact recovery" in output


class TestTraceFlag:
    def test_pipeline_trace_covers_all_stages(self, payload, tmp_path, capsys):
        trace_path = tmp_path / "trace.jsonl"
        code = run(
            "pipeline",
            payload,
            tmp_path / "out.bin",
            *ENCODING_ARGS,
            "--coverage",
            8,
            "--error-rate",
            0.04,
            "--trace",
            trace_path,
        )
        assert code == 0
        assert "trace written to" in capsys.readouterr().out

        lines = [json.loads(line) for line in trace_path.read_text().splitlines()]
        assert lines[0]["kind"] == "meta"
        spans = [line for line in lines if line["kind"] == "span"]
        names = {span["name"] for span in spans}
        assert {
            "pipeline.run",
            "pipeline.encoding",
            "pipeline.simulation",
            "pipeline.clustering",
            "pipeline.reconstruction",
            "pipeline.decoding",
        } <= names
        # Stage spans nest under the root span.
        (root,) = (span for span in spans if span["name"] == "pipeline.run")
        assert root["parent"] == 0
        stage_parents = {
            span["parent"] for span in spans if span["name"].startswith("pipeline.")
            and span["name"] != "pipeline.run"
        }
        assert stage_parents == {root["id"]}
        counters = [line for line in lines if line["kind"] == "counter"]
        assert any(c["name"] == "clusters_formed" for c in counters)

    def test_encode_trace(self, payload, tmp_path):
        trace_path = tmp_path / "trace.jsonl"
        assert (
            run(
                "encode",
                payload,
                tmp_path / "strands.txt",
                *ENCODING_ARGS,
                "--trace",
                trace_path,
            )
            == 0
        )
        lines = [json.loads(line) for line in trace_path.read_text().splitlines()]
        assert any(
            line["kind"] == "span" and line["name"] == "pipeline.encoding"
            for line in lines
        )


class TestChromeTraceFlag:
    def test_pipeline_trace_out_writes_chrome_json(self, payload, tmp_path, capsys):
        chrome_path = tmp_path / "chrome.json"
        code = run(
            "pipeline",
            payload,
            tmp_path / "out.bin",
            *ENCODING_ARGS,
            "--coverage",
            8,
            "--error-rate",
            0.04,
            "--workers",
            2,
            "--trace-out",
            chrome_path,
        )
        assert code == 0
        assert "chrome trace written to" in capsys.readouterr().out
        document = json.loads(chrome_path.read_text())
        events = [e for e in document["traceEvents"] if e.get("ph") == "X"]
        names = {e["name"] for e in events}
        assert "pipeline.run" in names
        # Fan-outs capture worker-side spans even at low worker counts.
        assert "worker.chunk" in names
        metadata = [e for e in document["traceEvents"] if e.get("ph") == "M"]
        assert any(e["args"]["name"] == "main" for e in metadata)

    def test_profile_adds_memory_attributes(self, payload, tmp_path, capsys):
        trace_path = tmp_path / "trace.jsonl"
        code = run(
            "pipeline",
            payload,
            tmp_path / "out.bin",
            *ENCODING_ARGS,
            "--coverage",
            8,
            "--profile",
            "--trace",
            trace_path,
        )
        assert code == 0
        lines = [json.loads(line) for line in trace_path.read_text().splitlines()]
        stage_spans = [
            line
            for line in lines
            if line["kind"] == "span" and line["name"] == "pipeline.decoding"
        ]
        assert stage_spans
        for span in stage_spans:
            assert "mem_peak_kb" in span["attributes"]
            assert "mem_current_kb" in span["attributes"]
            assert "gc_collections" in span["attributes"]

    def test_profile_without_trace_prints_report(self, payload, tmp_path, capsys):
        code = run(
            "pipeline",
            payload,
            tmp_path / "out.bin",
            *ENCODING_ARGS,
            "--coverage",
            8,
            "--profile",
        )
        assert code == 0
        assert "profile report" in capsys.readouterr().out


class TestTraceCommand:
    def test_renders_report_from_trace_file(self, payload, tmp_path, capsys):
        trace_path = tmp_path / "trace.jsonl"
        run(
            "pipeline",
            payload,
            tmp_path / "out.bin",
            *ENCODING_ARGS,
            "--coverage",
            8,
            "--trace",
            trace_path,
        )
        capsys.readouterr()
        assert run("trace", trace_path) == 0
        output = capsys.readouterr().out
        assert "span latency" in output
        assert "pipeline.clustering" in output
        assert "counters" in output
        assert "clusters_formed" in output

    def test_reports_fanout_balance_from_worker_runs(
        self, payload, tmp_path, capsys
    ):
        trace_path = tmp_path / "trace.jsonl"
        run(
            "pipeline",
            payload,
            tmp_path / "out.bin",
            *ENCODING_ARGS,
            "--coverage",
            8,
            "--trace",
            trace_path,
        )
        capsys.readouterr()
        assert run("trace", trace_path) == 0
        output = capsys.readouterr().out
        assert "fan-out balance" in output
        assert "imbalance" in output

    def test_converts_jsonl_to_chrome(self, payload, tmp_path, capsys):
        trace_path = tmp_path / "trace.jsonl"
        run(
            "pipeline",
            payload,
            tmp_path / "out.bin",
            *ENCODING_ARGS,
            "--coverage",
            8,
            "--trace",
            trace_path,
        )
        capsys.readouterr()
        chrome_path = tmp_path / "chrome.json"
        assert run("trace", trace_path, "--chrome", chrome_path) == 0
        assert "chrome trace written to" in capsys.readouterr().out
        document = json.loads(chrome_path.read_text())
        names = {e["name"] for e in document["traceEvents"] if e.get("ph") == "X"}
        assert "pipeline.run" in names
        assert "worker.chunk" in names


class TestWhyCommand:
    def run_with_ledger(self, payload, tmp_path, capsys):
        ledger_path = tmp_path / "ledger.jsonl"
        code = run(
            "pipeline",
            payload,
            tmp_path / "out.bin",
            *ENCODING_ARGS,
            "--coverage",
            8,
            "--error-rate",
            0.04,
            "--provenance",
            ledger_path,
        )
        assert code == 0
        assert "provenance ledger written to" in capsys.readouterr().out
        return ledger_path

    def test_summary_renders_verdict_table(self, payload, tmp_path, capsys):
        ledger_path = self.run_with_ledger(payload, tmp_path, capsys)
        assert run("why", ledger_path) == 0
        output = capsys.readouterr().out
        assert "per-strand verdicts" in output
        assert "dropout" in output and "ok" in output

    def test_json_summary_accounts_for_every_strand(
        self, payload, tmp_path, capsys
    ):
        ledger_path = self.run_with_ledger(payload, tmp_path, capsys)
        assert run("why", ledger_path, "--json") == 0
        summary = json.loads(capsys.readouterr().out)
        assert sum(summary["verdicts"].values()) == summary["strands"]
        assert summary["strands"] > 0

    def test_strand_timeline(self, payload, tmp_path, capsys):
        ledger_path = self.run_with_ledger(payload, tmp_path, capsys)
        assert run("why", ledger_path, "--strand", 0) == 0
        output = capsys.readouterr().out
        assert "strand 0" in output
        assert "encoded" in output and "decoded" in output

    def test_unknown_strand_errors(self, payload, tmp_path, capsys):
        ledger_path = self.run_with_ledger(payload, tmp_path, capsys)
        assert run("why", ledger_path, "--strand", 10**6) == 2
        assert "not in ledger" in capsys.readouterr().err

    def test_unreadable_ledger_errors(self, tmp_path, capsys):
        assert run("why", tmp_path / "missing.jsonl") == 2
        assert "error" in capsys.readouterr().err


class TestLoggingFlags:
    def test_log_level_warning_hides_diagnostics(self, payload, tmp_path, capsys):
        code = run(
            "encode",
            payload,
            tmp_path / "strands.txt",
            *ENCODING_ARGS,
            "--trace",
            tmp_path / "trace.jsonl",
            "--log-level",
            "warning",
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "trace written to" not in output
        assert "encoded" in output  # primary output is not logging

    def test_json_log_format(self, payload, tmp_path, capsys):
        code = run(
            "encode",
            payload,
            tmp_path / "strands.txt",
            *ENCODING_ARGS,
            "--trace",
            tmp_path / "trace.jsonl",
            "--log-format",
            "json",
        )
        assert code == 0
        record_lines = [
            line
            for line in capsys.readouterr().out.splitlines()
            if line.startswith("{")
        ]
        records = [json.loads(line) for line in record_lines]
        assert any("trace written to" in r["message"] for r in records)
        assert all(r["component"].startswith("repro.") for r in records)

    def test_verbose_enables_debug(self, payload, tmp_path):
        import logging

        code = run(
            "encode", payload, tmp_path / "strands.txt", *ENCODING_ARGS, "-v"
        )
        assert code == 0
        assert logging.getLogger("repro").level == logging.DEBUG


class TestDensityCommand:
    def test_prints_report(self, capsys):
        assert run("density", "--parity-columns", 20) == 0
        output = capsys.readouterr().out
        assert "net density" in output


class TestStatsCommand:
    def test_clean_pool(self, payload, tmp_path, capsys):
        strands = tmp_path / "strands.txt"
        run("encode", payload, strands, *ENCODING_ARGS)
        code = run("stats", strands, "--max-run", 10)
        output = capsys.readouterr().out
        assert code == 0
        assert "clean" in output

    def test_dirty_pool_nonzero_exit(self, tmp_path, capsys):
        strands = tmp_path / "bad.txt"
        strands.write_text("AAAAAAAAAAAAAAAA\nGGGGGGGGGGGGGGGG\n")
        code = run("stats", strands)
        output = capsys.readouterr().out
        assert code == 1
        assert "violations" in output


class TestBenchCompare:
    def _kernel_doc(self):
        return {
            "kind": "repro-kernel-bench",
            "schema_version": 2,
            "distance": {
                "kernels": [
                    {
                        "kernel": "myers",
                        "verdicts_match_reference": True,
                        "speedup_vs_reference": 40.0,
                    }
                ]
            },
            "signatures": {
                "flavours": [
                    {"flavour": "qgram", "matches_scalar": True, "speedup": 2.0}
                ]
            },
            "reed_solomon": {
                "kernels": [
                    {"kernel": "encode", "matches_oracle": True, "speedup": 12.0}
                ]
            },
        }

    def test_kernel_compare_passes(self, tmp_path, capsys):
        base = tmp_path / "base.json"
        new = tmp_path / "new.json"
        base.write_text(json.dumps(self._kernel_doc()))
        new.write_text(json.dumps(self._kernel_doc()))
        assert run("bench", "--compare", base, new) == 0
        assert "OK (no regressions)" in capsys.readouterr().out

    def test_kernel_correctness_regression_fails(self, tmp_path, capsys):
        base = tmp_path / "base.json"
        new_doc = self._kernel_doc()
        new_doc["reed_solomon"]["kernels"][0]["matches_oracle"] = False
        new = tmp_path / "new.json"
        base.write_text(json.dumps(self._kernel_doc()))
        new.write_text(json.dumps(new_doc))
        # Exit 3 is the bench-regression code, distinct from runs drift (4).
        assert run("bench", "--compare", base, new) == 3

    def test_mixed_kinds_rejected(self, tmp_path, capsys):
        kernel = tmp_path / "kernel.json"
        kernel.write_text(json.dumps(self._kernel_doc()))
        pipeline = tmp_path / "pipeline.json"
        pipeline.write_text(json.dumps({"suite": "smoke", "workloads": []}))
        assert run("bench", "--compare", kernel, pipeline) == 2
        assert "cannot compare" in capsys.readouterr().err


PIPELINE_ARGS = (*ENCODING_ARGS, "--coverage", 6)


class TestTraceFromFlag:
    def _record_trace(self, payload, tmp_path, capsys):
        trace_path = tmp_path / "trace.jsonl"
        assert (
            run("pipeline", payload, tmp_path / "out.bin", *PIPELINE_ARGS,
                "--trace", trace_path) == 0
        )
        capsys.readouterr()
        return trace_path

    def test_from_flag_renders_saved_trace(self, payload, tmp_path, capsys):
        trace_path = self._record_trace(payload, tmp_path, capsys)
        assert run("trace", "--from", trace_path) == 0
        assert "span latency" in capsys.readouterr().out

    def test_positional_and_from_together_is_usage_error(
        self, payload, tmp_path, capsys
    ):
        trace_path = self._record_trace(payload, tmp_path, capsys)
        assert run("trace", trace_path, "--from", trace_path) == 2
        assert "exactly one" in capsys.readouterr().err

    def test_no_source_is_usage_error(self, capsys):
        assert run("trace") == 2
        assert "exactly one" in capsys.readouterr().err


class TestRunsRegistryCommands:
    """`pipeline` records by default (conftest points $REPRO_RUNS_DIR at a
    per-test directory); `repro runs` works the resulting registry."""

    def _pipeline(self, payload, tmp_path, registry, *extra):
        return run(
            "pipeline", payload, tmp_path / "out.bin", *PIPELINE_ARGS,
            "--runs-dir", registry, *extra,
        )

    def test_identical_runs_share_a_fingerprint_and_drift_passes(
        self, payload, tmp_path, capsys
    ):
        registry = tmp_path / "registry"
        assert self._pipeline(payload, tmp_path, registry) == 0
        assert self._pipeline(payload, tmp_path, registry) == 0
        capsys.readouterr()
        assert run("runs", "list", "--dir", registry, "--json") == 0
        records = json.loads(capsys.readouterr().out)
        assert len(records) == 2
        assert len({record["fingerprint"] for record in records}) == 1
        assert run("runs", "drift", "--dir", registry) == 0
        assert "OK (no regressions)" in capsys.readouterr().out

    def test_seed_change_makes_a_new_fingerprint(
        self, payload, tmp_path, capsys
    ):
        registry = tmp_path / "registry"
        assert self._pipeline(payload, tmp_path, registry) == 0
        assert self._pipeline(payload, tmp_path, registry, "--seed", 9) == 0
        capsys.readouterr()
        run("runs", "list", "--dir", registry, "--json")
        records = json.loads(capsys.readouterr().out)
        assert len({record["fingerprint"] for record in records}) == 2
        # The perturbed run has no same-fingerprint history: OK + warning.
        assert run("runs", "drift", "--dir", registry) == 0
        assert "first run of this configuration" in capsys.readouterr().out

    def test_injected_regression_exits_drift_code(
        self, payload, tmp_path, capsys
    ):
        registry = tmp_path / "registry"
        assert self._pipeline(payload, tmp_path, registry) == 0
        capsys.readouterr()
        # Corrupt the newest record's quality in place: the drift gate
        # must flag it against the (identical-fingerprint) history.
        assert self._pipeline(payload, tmp_path, registry) == 0
        log = registry / "runs.jsonl"
        lines = log.read_text().splitlines()
        doctored = json.loads(lines[-1])
        doctored["metrics"]["success"] = 0.0
        lines[-1] = json.dumps(doctored)
        log.write_text("\n".join(lines) + "\n")
        capsys.readouterr()
        assert run("runs", "drift", "--dir", registry) == 4
        assert "regression(s)" in capsys.readouterr().out

    def test_no_record_skips_the_registry(self, payload, tmp_path):
        registry = tmp_path / "registry"
        assert self._pipeline(payload, tmp_path, registry, "--no-record") == 0
        assert not (registry / "runs.jsonl").exists()

    def test_sample_interval_attaches_series(self, payload, tmp_path, capsys):
        registry = tmp_path / "registry"
        assert (
            self._pipeline(
                payload, tmp_path, registry, "--sample-interval", "0.01"
            ) == 0
        )
        capsys.readouterr()
        run("runs", "list", "--dir", registry, "--json")
        (record,) = json.loads(capsys.readouterr().out)
        samples = record["samples"]
        assert len(samples) >= 2
        times = [sample["t"] for sample in samples]
        assert all(b > a for a, b in zip(times, times[1:]))

    def test_show_and_diff_and_gc(self, payload, tmp_path, capsys):
        registry = tmp_path / "registry"
        assert self._pipeline(payload, tmp_path, registry) == 0
        assert self._pipeline(payload, tmp_path, registry) == 0
        capsys.readouterr()
        run("runs", "list", "--dir", registry, "--json")
        records = json.loads(capsys.readouterr().out)
        a, b = records[1]["run_id"], records[0]["run_id"]
        assert run("runs", "show", a[:17], "--dir", registry) == 0
        assert "drift-gated" in capsys.readouterr().out
        assert run("runs", "diff", a, b, "--dir", registry) == 0
        assert "OK (no regressions)" in capsys.readouterr().out
        assert run("runs", "gc", "--max-count", 1, "--dir", registry) == 0
        assert "kept 1, removed 1" in capsys.readouterr().out
        run("runs", "list", "--dir", registry, "--json")
        assert len(json.loads(capsys.readouterr().out)) == 1

    def test_unknown_run_id_is_usage_error(self, tmp_path, capsys):
        registry = tmp_path / "registry"
        assert run("runs", "show", "nope", "--dir", registry) == 2
        assert "no run matches" in capsys.readouterr().err

    def test_gc_without_policy_is_usage_error(self, tmp_path, capsys):
        assert run("runs", "gc", "--dir", tmp_path / "registry") == 2
        assert "max-age-days" in capsys.readouterr().err

    def test_empty_registry_lists_cleanly(self, tmp_path, capsys):
        assert run("runs", "list", "--dir", tmp_path / "registry") == 0
        assert "no runs recorded" in capsys.readouterr().out

    def test_default_dir_comes_from_environment(self, payload, tmp_path, capsys):
        # conftest sets $REPRO_RUNS_DIR; recording without --runs-dir and
        # reading without --dir must agree on that location.
        assert (
            run("pipeline", payload, tmp_path / "out.bin", *PIPELINE_ARGS) == 0
        )
        capsys.readouterr()
        assert run("runs", "list", "--json") == 0
        assert len(json.loads(capsys.readouterr().out)) == 1


class TestExitCodeEpilog:
    def test_help_documents_the_contract(self, capsys):
        with pytest.raises(SystemExit):
            run("--help")
        output = capsys.readouterr().out
        assert "exit codes:" in output
        assert "bench regression" in output
        assert "run-registry drift" in output
