"""Failure injection: feeding every module hostile inputs.

A toolkit for noisy-channel research must itself be robust to garbage: the
decoder sees strands with junk characters, reconstruction sees clusters
polluted with empty or foreign reads, clustering sees wildly varying read
lengths.  These tests pin down the degradation behaviour (graceful, with
accounting) rather than just the happy path.
"""

import random

import pytest

from repro.clustering import ClusteringConfig, RashtchianClusterer
from repro.codec import DNADecoder, DNAEncoder, EncodingParameters
from repro.dna.alphabet import random_sequence
from repro.reconstruction import (
    BMAReconstructor,
    DoubleSidedBMAReconstructor,
    NWConsensusReconstructor,
)
from repro.simulation import ConstantCoverage, IIDChannel, sequence_pool

FAST = EncodingParameters(
    payload_bytes=10, data_columns=12, parity_columns=6, index_bytes=2
)


class TestDecoderHostileInputs:
    def test_invalid_characters_counted_not_fatal(self):
        pool = DNAEncoder(FAST).encode(b"hostile")
        strands = list(pool.references)
        strands[0] = "N" * len(strands[0])  # basecaller 'N' calls
        data, report = DNADecoder(FAST).decode(strands, expected_units=pool.num_units)
        assert data == b"hostile"
        assert report.bad_symbols == 1

    def test_empty_strands_ignored(self):
        pool = DNAEncoder(FAST).encode(b"empty strands")
        strands = list(pool.references) + ["", "", ""]
        data, report = DNADecoder(FAST).decode(strands, expected_units=pool.num_units)
        assert data == b"empty strands"

    def test_wild_length_strands(self):
        pool = DNAEncoder(FAST).encode(b"length chaos")
        strands = list(pool.references)
        strands.append("ACGT" * 300)  # absurdly long read
        strands.append("AC")  # absurdly short read
        data, report = DNADecoder(FAST).decode(strands, expected_units=pool.num_units)
        assert data == b"length chaos"
        assert report.length_adjusted >= 2

    def test_all_garbage_fails_cleanly(self, rng):
        garbage = [random_sequence(FAST.body_nt, rng) for _ in range(30)]
        data, report = DNADecoder(FAST).decode(garbage, expected_units=1)
        assert not report.success


class TestReconstructionHostileClusters:
    @pytest.mark.parametrize(
        "reconstructor",
        [BMAReconstructor(), DoubleSidedBMAReconstructor(), NWConsensusReconstructor()],
        ids=["bma", "dbma", "nw"],
    )
    def test_empty_reads_inside_cluster_skipped(self, reconstructor, rng):
        reference = random_sequence(40, rng)
        cluster = [reference, "", reference, ""]
        assert reconstructor.reconstruct(cluster, 40) == reference

    @pytest.mark.parametrize(
        "reconstructor",
        [BMAReconstructor(), DoubleSidedBMAReconstructor(), NWConsensusReconstructor()],
        ids=["bma", "dbma", "nw"],
    )
    def test_single_foreign_read_outvoted(self, reconstructor, rng):
        reference = random_sequence(40, rng)
        foreign = random_sequence(40, rng)
        cluster = [reference, reference, reference, foreign]
        result = reconstructor.reconstruct(cluster, 40)
        mismatches = sum(1 for a, b in zip(result, reference) if a != b)
        assert mismatches <= 2

    def test_cluster_of_only_empty_reads_raises(self):
        with pytest.raises(ValueError):
            NWConsensusReconstructor().reconstruct(["", ""], 10)


class TestClusteringHostileReads:
    def test_mixed_length_reads_cluster(self, rng):
        references = [random_sequence(100, rng) for _ in range(15)]
        run = sequence_pool(
            references, IIDChannel.from_total_rate(0.04), ConstantCoverage(4), rng
        )
        reads = list(run.reads) + [random_sequence(30, rng) for _ in range(5)]
        result = RashtchianClusterer(
            ClusteringConfig(rounds=8, num_grams=48, seed=1)
        ).cluster(reads)
        flattened = sorted(i for cluster in result.clusters for i in cluster)
        assert flattened == list(range(len(reads)))

    def test_single_read(self):
        result = RashtchianClusterer(
            ClusteringConfig(rounds=2, num_grams=16, seed=1)
        ).cluster(["ACGTACGTACGT"])
        assert result.clusters == [[0]]

    def test_identical_reads_all_merge(self):
        reads = ["ACGTACGTACGTACGTACGT"] * 12
        result = RashtchianClusterer(
            ClusteringConfig(rounds=8, num_grams=16, seed=1)
        ).cluster(reads)
        assert len(result.clusters) == 1


class TestEndToEndUnderHeavyDamage:
    def test_degrades_with_report_not_exception(self, rng):
        from repro.pipeline import Pipeline, PipelineConfig

        config = PipelineConfig(
            encoding=FAST,
            channel=IIDChannel.from_total_rate(0.25),  # brutal channel
            coverage=ConstantCoverage(4),
            clustering=ClusteringConfig(rounds=8, num_grams=48, seed=1),
            seed=5,
        )
        result = Pipeline(config).run(b"probably unrecoverable" * 4)
        # No exception; outcome recorded in the report either way.
        assert result.decode_report is not None
        assert isinstance(result.success, bool)
