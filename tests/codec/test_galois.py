"""Field-axiom tests for GF(256)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.codec.galois import GF256

field = GF256()
elements = st.integers(min_value=0, max_value=255)
nonzero = st.integers(min_value=1, max_value=255)
polys = st.lists(elements, min_size=1, max_size=12)


class TestScalarArithmetic:
    @given(elements, elements)
    def test_add_is_xor_and_self_inverse(self, a, b):
        total = GF256.add(a, b)
        assert GF256.add(total, b) == a

    @given(elements, elements, elements)
    def test_multiplication_associative(self, a, b, c):
        assert field.mul(field.mul(a, b), c) == field.mul(a, field.mul(b, c))

    @given(elements, elements)
    def test_multiplication_commutative(self, a, b):
        assert field.mul(a, b) == field.mul(b, a)

    @given(elements, elements, elements)
    def test_distributive(self, a, b, c):
        left = field.mul(a, GF256.add(b, c))
        right = GF256.add(field.mul(a, b), field.mul(a, c))
        assert left == right

    @given(nonzero)
    def test_inverse(self, a):
        assert field.mul(a, field.inverse(a)) == 1

    @given(elements)
    def test_multiplicative_identity(self, a):
        assert field.mul(a, 1) == a

    @given(elements)
    def test_zero_annihilates(self, a):
        assert field.mul(a, 0) == 0

    def test_division_by_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            field.div(5, 0)
        with pytest.raises(ZeroDivisionError):
            field.inverse(0)

    @given(nonzero, nonzero)
    def test_div_inverts_mul(self, a, b):
        assert field.div(field.mul(a, b), b) == a

    @given(nonzero, st.integers(min_value=-300, max_value=300))
    def test_power_consistent_with_repeated_mul(self, base, exponent):
        expected = 1
        if exponent >= 0:
            for _ in range(exponent):
                expected = field.mul(expected, base)
        else:
            inverse = field.inverse(base)
            for _ in range(-exponent):
                expected = field.mul(expected, inverse)
        assert field.power(base, exponent) == expected


class TestPolynomialArithmetic:
    @given(polys, elements)
    def test_scale_evaluates_consistently(self, poly, point):
        scaled = field.poly_scale(poly, 7)
        assert field.poly_eval(scaled, point) == field.mul(
            7, field.poly_eval(poly, point)
        )

    @given(polys, polys, elements)
    def test_mul_evaluates_consistently(self, a, b, point):
        product = field.poly_mul(a, b)
        assert field.poly_eval(product, point) == field.mul(
            field.poly_eval(a, point), field.poly_eval(b, point)
        )

    @given(polys, polys, elements)
    def test_add_evaluates_consistently(self, a, b, point):
        total = GF256.poly_add(a, b)
        assert field.poly_eval(total, point) == GF256.add(
            field.poly_eval(a, point), field.poly_eval(b, point)
        )

    @given(polys)
    def test_divmod_remainder_degree(self, dividend):
        divisor = [1, 7, 11]
        padded = list(dividend) + [0, 0]
        remainder = field.poly_divmod(padded, divisor)
        assert len(remainder) == len(divisor) - 1

    def test_horner_known_value(self):
        # p(x) = x^2 + 1 at x = 2 -> 4 ^ 1 = 5 in GF(256)
        assert field.poly_eval([1, 0, 1], 2) == 5
