"""Tests for the Baseline/Gini/DNAMapper matrix layouts."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.codec.layout import (
    BaselineLayout,
    DNAMapperLayout,
    GiniLayout,
    MatrixLayout,
    _validate_rectangular,
    make_layout,
)


def matrices(min_rows=1, max_rows=12, min_cols=1, max_cols=12):
    return st.integers(min_rows, max_rows).flatmap(
        lambda rows: st.integers(min_cols, max_cols).flatmap(
            lambda cols: st.lists(
                st.lists(
                    st.integers(min_value=0, max_value=255),
                    min_size=cols,
                    max_size=cols,
                ),
                min_size=rows,
                max_size=rows,
            )
        )
    )


class TestRoundTrips:
    @given(matrices())
    def test_baseline_inverse(self, codewords):
        layout = BaselineLayout()
        assert layout.extract(layout.place(codewords)) == [
            list(row) for row in codewords
        ]

    @given(matrices())
    def test_gini_inverse(self, codewords):
        layout = GiniLayout()
        assert layout.extract(layout.place(codewords)) == [
            list(row) for row in codewords
        ]

    @given(matrices(min_rows=2, max_rows=8))
    def test_dnamapper_inverse(self, codewords):
        reliability = list(range(len(codewords)))[::-1]
        layout = DNAMapperLayout(reliability)
        assert layout.extract(layout.place(codewords)) == [
            list(row) for row in codewords
        ]


class TestGiniProperties:
    def test_diagonal_placement(self):
        codewords = [[10, 11, 12], [20, 21, 22], [30, 31, 32]]
        matrix = GiniLayout().place(codewords)
        # Byte j of codeword i lives at row (i + j) % R.
        for i in range(3):
            for j in range(3):
                assert matrix[(i + j) % 3][j] == codewords[i][j]

    def test_every_codeword_visits_every_row(self):
        rows, cols = 5, 5
        codewords = [[100 * i + j for j in range(cols)] for i in range(rows)]
        matrix = GiniLayout().place(codewords)
        for i in range(rows):
            rows_visited = set()
            for j in range(cols):
                for r in range(rows):
                    if matrix[r][j] == codewords[i][j]:
                        rows_visited.add(r)
                        break
            assert rows_visited == set(range(rows))

    @given(matrices())
    def test_place_is_permutation(self, codewords):
        from collections import Counter

        matrix = GiniLayout().place(codewords)
        original = Counter(x for row in codewords for x in row)
        placed = Counter(x for row in matrix for x in row)
        assert original == placed


class TestDNAMapper:
    def test_priority_on_most_reliable_row(self):
        codewords = [[1, 1], [2, 2], [3, 3]]
        # Row 2 most reliable, then 0, then 1.
        layout = DNAMapperLayout([0.5, 0.1, 0.9])
        matrix = layout.place(codewords)
        assert matrix[2] == [1, 1]  # highest priority -> most reliable
        assert matrix[0] == [2, 2]
        assert matrix[1] == [3, 3]

    def test_identity_without_profile(self):
        codewords = [[1], [2]]
        assert DNAMapperLayout().place(codewords) == codewords

    def test_profile_size_mismatch_raises(self):
        layout = DNAMapperLayout([1.0, 2.0])
        with pytest.raises(ValueError):
            layout.place([[1], [2], [3]])


class TestValidation:
    def test_empty_matrix_raises(self):
        with pytest.raises(ValueError):
            BaselineLayout().place([])

    def test_ragged_matrix_raises(self):
        with pytest.raises(ValueError):
            GiniLayout().place([[1, 2], [3]])

    def test_empty_rows_raise(self):
        with pytest.raises(ValueError):
            GiniLayout().place([[], []])


class TestFactory:
    def test_make_layout(self):
        assert make_layout("baseline").name == "baseline"
        assert make_layout("gini").name == "gini"
        assert make_layout("dnamapper").name == "dnamapper"

    def test_unknown_raises(self):
        with pytest.raises(ValueError):
            make_layout("zigzag")


class TestArrayApiMatchesListApi:
    """place_array/extract_array must mirror the list API for every layout."""

    def _layouts(self, rows):
        return [
            BaselineLayout(),
            GiniLayout(),
            DNAMapperLayout(list(range(rows))),
        ]

    @given(matrices())
    def test_place_array_matches_place(self, matrix):
        codewords = np.array(matrix, dtype=np.uint8)
        for layout in self._layouts(codewords.shape[0]):
            placed = layout.place_array(codewords)
            assert placed.dtype == np.uint8
            assert placed.tolist() == layout.place(matrix)

    @given(matrices())
    def test_extract_array_matches_extract(self, matrix):
        placed = np.array(matrix, dtype=np.uint8)
        for layout in self._layouts(placed.shape[0]):
            extracted = layout.extract_array(placed)
            assert extracted.dtype == np.uint8
            assert extracted.tolist() == layout.extract(matrix)

    @given(matrices())
    def test_array_roundtrip(self, matrix):
        codewords = np.array(matrix, dtype=np.uint8)
        for layout in self._layouts(codewords.shape[0]):
            roundtrip = layout.extract_array(layout.place_array(codewords))
            assert np.array_equal(roundtrip, codewords)

    def test_base_class_default_delegates_to_list_api(self):
        class ShiftLayout(MatrixLayout):
            name = "shift"

            def place(self, codewords):
                _validate_rectangular(codewords)
                return [list(reversed(row)) for row in codewords]

            def extract(self, matrix):
                _validate_rectangular(matrix)
                return [list(reversed(row)) for row in matrix]

        layout = ShiftLayout()
        codewords = np.arange(12, dtype=np.uint8).reshape(3, 4)
        assert layout.place_array(codewords).tolist() == layout.place(
            codewords.tolist()
        )
        assert np.array_equal(
            layout.extract_array(layout.place_array(codewords)), codewords
        )

    def test_array_validation(self):
        for layout in self._layouts(2):
            with pytest.raises(ValueError):
                layout.place_array(np.zeros((0, 3), dtype=np.uint8))
            with pytest.raises(ValueError):
                layout.extract_array(np.zeros(4, dtype=np.uint8))

    def test_place_array_does_not_alias_input(self):
        codewords = np.arange(12, dtype=np.uint8).reshape(3, 4)
        for layout in self._layouts(3):
            placed = layout.place_array(codewords)
            placed[0, 0] ^= 0xFF
            assert codewords[0, 0] == 0
