"""Tests for the index-keyed whitening transform."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.codec.bits import bytes_to_bases
from repro.codec.randomizer import Randomizer
from repro.dna.sequence import max_homopolymer


class TestRandomizer:
    @given(st.binary(max_size=100), st.integers(min_value=0, max_value=2**31))
    def test_involution(self, payload, index):
        randomizer = Randomizer(seed=123)
        whitened = randomizer.apply(payload, index)
        assert randomizer.apply(whitened, index) == payload

    def test_different_indexes_differ(self):
        randomizer = Randomizer()
        payload = bytes(32)
        streams = {randomizer.apply(payload, index) for index in range(50)}
        assert len(streams) == 50

    def test_different_seeds_differ(self):
        payload = bytes(32)
        assert Randomizer(seed=1).apply(payload, 0) != Randomizer(seed=2).apply(
            payload, 0
        )

    def test_negative_index_raises(self):
        with pytest.raises(ValueError):
            Randomizer().apply(b"x", -1)

    def test_seed_out_of_range_raises(self):
        with pytest.raises(ValueError):
            Randomizer(seed=2**32)

    def test_whitening_breaks_homopolymers(self):
        # The whole point of randomization in unconstrained coding: a
        # pathological all-zero payload must not become a giant A-run.
        randomizer = Randomizer()
        worst = max(
            max_homopolymer(bytes_to_bases(randomizer.apply(bytes(50), index)))
            for index in range(200)
        )
        assert worst <= 10

    def test_deterministic(self):
        a = Randomizer(seed=9).apply(b"hello world", 7)
        b = Randomizer(seed=9).apply(b"hello world", 7)
        assert a == b


class TestBatchedWhitening:
    """apply_batch/keystream_batch pinned against the scalar transform."""

    @given(
        st.integers(min_value=1, max_value=20),
        st.integers(min_value=0, max_value=30),
        st.integers(min_value=0, max_value=2**31),
        st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_apply_batch_matches_scalar(self, rows, width, first_index, seed):
        randomizer = Randomizer(seed=seed)
        rng = np.random.default_rng(seed)
        payloads = rng.integers(0, 256, size=(rows, width), dtype=np.uint8)
        indices = np.arange(first_index, first_index + rows, dtype=np.int64)
        batched = randomizer.apply_batch(payloads, indices)
        for row in range(rows):
            assert batched[row].tobytes() == randomizer.apply(
                payloads[row].tobytes(), first_index + row
            )

    def test_keystream_batch_matches_scalar(self):
        randomizer = Randomizer(seed=77)
        streams = randomizer.keystream_batch(np.arange(50, dtype=np.int64), 23)
        for index in range(50):
            assert streams[index].tobytes() == randomizer._keystream(index, 23)

    def test_batch_involution(self):
        randomizer = Randomizer()
        payloads = np.arange(60, dtype=np.uint8).reshape(4, 15)
        indices = np.array([3, 1, 4, 1000], dtype=np.int64)
        whitened = randomizer.apply_batch(payloads, indices)
        assert np.array_equal(
            randomizer.apply_batch(whitened, indices), payloads
        )

    def test_zero_state_reseed_matches_scalar(self):
        # An index whose mixed seed is zero must take the same 0xDEADBEEF
        # reseed as the scalar path.
        randomizer = Randomizer(seed=0)
        indices = np.arange(0, 10, dtype=np.int64)
        batched = randomizer.keystream_batch(indices, 8)
        for index in range(10):
            assert batched[index].tobytes() == randomizer._keystream(index, 8)
