"""Tests for the index-keyed whitening transform."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.codec.bits import bytes_to_bases
from repro.codec.randomizer import Randomizer
from repro.dna.sequence import max_homopolymer


class TestRandomizer:
    @given(st.binary(max_size=100), st.integers(min_value=0, max_value=2**31))
    def test_involution(self, payload, index):
        randomizer = Randomizer(seed=123)
        whitened = randomizer.apply(payload, index)
        assert randomizer.apply(whitened, index) == payload

    def test_different_indexes_differ(self):
        randomizer = Randomizer()
        payload = bytes(32)
        streams = {randomizer.apply(payload, index) for index in range(50)}
        assert len(streams) == 50

    def test_different_seeds_differ(self):
        payload = bytes(32)
        assert Randomizer(seed=1).apply(payload, 0) != Randomizer(seed=2).apply(
            payload, 0
        )

    def test_negative_index_raises(self):
        with pytest.raises(ValueError):
            Randomizer().apply(b"x", -1)

    def test_seed_out_of_range_raises(self):
        with pytest.raises(ValueError):
            Randomizer(seed=2**32)

    def test_whitening_breaks_homopolymers(self):
        # The whole point of randomization in unconstrained coding: a
        # pathological all-zero payload must not become a giant A-run.
        randomizer = Randomizer()
        worst = max(
            max_homopolymer(bytes_to_bases(randomizer.apply(bytes(50), index)))
            for index in range(200)
        )
        assert worst <= 10

    def test_deterministic(self):
        a = Randomizer(seed=9).apply(b"hello world", 7)
        b = Randomizer(seed=9).apply(b"hello world", 7)
        assert a == b
