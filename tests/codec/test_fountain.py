"""Tests for the DNA-Fountain-style LT codec."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codec.fountain import Droplet, FountainCodec, robust_soliton


class TestRobustSoliton:
    def test_is_a_distribution(self):
        for k in (1, 5, 50, 500):
            weights = robust_soliton(k)
            assert len(weights) == k + 1
            assert weights[0] == 0.0
            assert math.isclose(sum(weights), 1.0, rel_tol=1e-9)
            assert all(w >= 0 for w in weights)

    def test_degree_one_mass_positive(self):
        # The peeling decoder needs degree-1 droplets to get started.
        weights = robust_soliton(100)
        assert weights[1] > 0.01

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            robust_soliton(0)


class TestBlocks:
    @given(st.binary(max_size=400))
    def test_split_join_roundtrip(self, data):
        codec = FountainCodec(block_bytes=16)
        assert codec.join_blocks(codec.split_blocks(data)) == data

    def test_blocks_equal_size(self):
        codec = FountainCodec(block_bytes=16)
        blocks = codec.split_blocks(bytes(100))
        assert all(len(block) == 16 for block in blocks)

    def test_invalid_block_size(self):
        with pytest.raises(ValueError):
            FountainCodec(block_bytes=0)


class TestEncodeDecode:
    @settings(max_examples=15)
    @given(st.binary(min_size=1, max_size=500))
    def test_roundtrip(self, data):
        codec = FountainCodec(block_bytes=16)
        blocks = codec.split_blocks(data)
        droplets = codec.encode(data, overhead=2.0)
        assert codec.decode(droplets, len(blocks)) == data

    def test_rateless_robust_to_droplet_loss(self):
        data = bytes(range(256)) * 2
        codec = FountainCodec(block_bytes=16)
        blocks = codec.split_blocks(data)
        droplets = codec.encode(data, overhead=2.5)
        rng = random.Random(5)
        survivors = [d for d in droplets if rng.random() > 0.25]
        assert codec.decode(survivors, len(blocks)) == data

    def test_insufficient_droplets_raise(self):
        data = bytes(200)
        codec = FountainCodec(block_bytes=16)
        blocks = codec.split_blocks(data)
        droplets = codec.encode(data, overhead=1.5)[:3]
        with pytest.raises(ValueError, match="insufficient"):
            codec.decode(droplets, len(blocks))

    def test_damaged_droplets_skipped(self):
        data = bytes(range(128))
        codec = FountainCodec(block_bytes=16)
        blocks = codec.split_blocks(data)
        droplets = codec.encode(data, overhead=2.5)
        droplets.append(Droplet(seed=9999, payload=b"short"))
        assert codec.decode(droplets, len(blocks)) == data

    def test_droplets_deterministic_in_seed(self):
        data = bytes(range(64))
        codec = FountainCodec(block_bytes=16)
        blocks = codec.split_blocks(data)
        assert codec.make_droplet(blocks, 7) == codec.make_droplet(blocks, 7)

    def test_overhead_validation(self):
        with pytest.raises(ValueError):
            FountainCodec().encode(b"x", overhead=0.5)

    def test_seed_range_validation(self):
        codec = FountainCodec()
        with pytest.raises(ValueError):
            codec.make_droplet([b"x" * 32], 2**32)


class TestStrandSerialisation:
    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_roundtrip(self, seed):
        codec = FountainCodec(block_bytes=8)
        droplet = Droplet(seed=seed, payload=bytes(range(8)))
        strand = codec.droplet_to_strand(droplet)
        assert len(strand) == codec.strand_nt
        assert codec.strand_to_droplet(strand) == droplet

    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            FountainCodec(block_bytes=8).strand_to_droplet("ACGT")

    def test_damaged_strand_rejected_by_checksum(self):
        codec = FountainCodec(block_bytes=8)
        strand = codec.droplet_to_strand(Droplet(seed=5, payload=bytes(8)))
        flipped = ("C" if strand[10] != "C" else "G")
        damaged = strand[:10] + flipped + strand[11:]
        with pytest.raises(ValueError, match="checksum"):
            codec.strand_to_droplet(damaged)

    def test_crc_is_stable(self):
        from repro.codec.fountain import crc16

        assert crc16(b"123456789") == 0x29B1  # CRC-16/CCITT-FALSE check value
        assert crc16(b"") == 0xFFFF

    def test_end_to_end_through_strands(self):
        data = b"fountain codes are rateless!" * 3
        codec = FountainCodec(block_bytes=12)
        blocks = codec.split_blocks(data)
        strands = [
            codec.droplet_to_strand(d) for d in codec.encode(data, overhead=2.2)
        ]
        recovered = codec.decode(
            [codec.strand_to_droplet(s) for s in strands], len(blocks)
        )
        assert recovered == data
