"""The tiered decoder pinned to an all-scalar reference decoder.

``ScalarOnlyDecoder`` routes every codeword row through the scalar errata
decoder (the pre-vectorization behaviour); decoded bytes *and* the full
:class:`DecodeReport` must match the production tiered decoder under clean,
erased, corrupted and uncorrectable inputs.  The vectorized
``_bytewise_majority`` is pinned against the original ``Counter`` loop,
whose ``most_common`` tie-break is first-insertion order.
"""

import dataclasses
import random
from collections import Counter
from typing import List

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codec import DNADecoder, DNAEncoder, EncodingParameters
from repro.codec.decoder import _bytewise_majority, _scalar_decode_rows
from repro.parallel import WorkerPool

FAST = EncodingParameters(
    payload_bytes=10, data_columns=12, parity_columns=6, index_bytes=2
)


class ScalarOnlyDecoder(DNADecoder):
    """Reference decoder: every row takes the scalar errata path."""

    def _decode_rows(self, codewords, erasures, pool=None):
        chunks = _scalar_decode_rows(
            [row.tolist() for row in codewords],
            (self._rs.nsym, tuple(erasures)),
        )
        return [
            None if message is None else np.array(message, dtype=np.uint8)
            for message in chunks
        ]


def corrupt(strand: str, position: int) -> str:
    replacement = "C" if strand[position] != "C" else "G"
    return strand[:position] + replacement + strand[position + 1 :]


def _damaged_strands(data: bytes, seed: int, drop: int, corruptions: int) -> List[str]:
    rng = random.Random(seed)
    strands = list(DNAEncoder(FAST).encode(data).references)
    for _ in range(corruptions):
        index = rng.randrange(len(strands))
        strands[index] = corrupt(strands[index], rng.randrange(len(strands[index])))
    for _ in range(min(drop, len(strands) - 1)):
        strands.pop(rng.randrange(len(strands)))
    return strands


class TestTieredMatchesScalar:
    @given(
        st.binary(min_size=1, max_size=400),
        st.integers(min_value=0, max_value=2**32 - 1),
        st.integers(min_value=0, max_value=4),
        st.integers(min_value=0, max_value=6),
    )
    @settings(max_examples=25, deadline=None)
    def test_bytes_and_report_identical(self, data, seed, drop, corruptions):
        pool = DNAEncoder(FAST).encode(data)
        strands = _damaged_strands(data, seed, drop, corruptions)
        tiered_bytes, tiered_report = DNADecoder(FAST).decode(
            strands, expected_units=pool.num_units
        )
        scalar_bytes, scalar_report = ScalarOnlyDecoder(FAST).decode(
            strands, expected_units=pool.num_units
        )
        assert tiered_bytes == scalar_bytes
        assert dataclasses.asdict(tiered_report) == dataclasses.asdict(scalar_report)

    def test_unit_with_too_many_erasures_fails_identically(self):
        data = bytes(range(120))
        pool = DNAEncoder(FAST).encode(data)
        # Drop more columns of unit 0 than the code can erase.
        survivors = pool.references[FAST.parity_columns + 1 :]
        tiered_bytes, tiered_report = DNADecoder(FAST).decode(
            survivors, expected_units=pool.num_units
        )
        scalar_bytes, scalar_report = ScalarOnlyDecoder(FAST).decode(
            survivors, expected_units=pool.num_units
        )
        assert not tiered_report.success
        assert tiered_report.failed_rows == FAST.payload_bytes
        assert tiered_bytes == scalar_bytes
        assert dataclasses.asdict(tiered_report) == dataclasses.asdict(scalar_report)

    def test_worker_pool_does_not_change_output(self):
        data = bytes(range(200))
        pool = DNAEncoder(FAST).encode(data)
        strands = _damaged_strands(data, seed=7, drop=2, corruptions=8)
        serial_bytes, serial_report = DNADecoder(FAST).decode(
            strands, expected_units=pool.num_units
        )
        with WorkerPool(2) as workers:
            pooled_bytes, pooled_report = DNADecoder(FAST).decode(
                strands, expected_units=pool.num_units, pool=workers
            )
        assert pooled_bytes == serial_bytes
        assert dataclasses.asdict(pooled_report) == dataclasses.asdict(serial_report)


def _counter_majority(payloads: List[bytes]) -> bytes:
    """The original scalar implementation, kept verbatim as the oracle."""
    length = max(len(p) for p in payloads)
    result = bytearray()
    for position in range(length):
        votes = Counter(p[position] for p in payloads if position < len(p))
        result.append(votes.most_common(1)[0][0])
    return bytes(result)


payload_lists = st.lists(
    st.binary(min_size=0, max_size=12), min_size=1, max_size=8
).filter(lambda payloads: any(payloads))


class TestBytewiseMajority:
    @given(payload_lists)
    @settings(max_examples=200, deadline=None)
    def test_matches_counter_implementation(self, payloads):
        assert _bytewise_majority(payloads) == _counter_majority(payloads)

    def test_tie_break_prefers_first_seen_value(self):
        # 0x01 and 0x02 both appear twice; Counter.most_common returns the
        # first-inserted value, which is payload 0's byte.
        payloads = [b"\x01", b"\x02", b"\x01", b"\x02"]
        assert _bytewise_majority(payloads) == b"\x01"
        assert _bytewise_majority(list(reversed(payloads))) == b"\x02"

    def test_ragged_payloads(self):
        payloads = [b"\xaa\xbb\xcc", b"\xaa", b"\xdd\xbb"]
        assert _bytewise_majority(payloads) == _counter_majority(payloads)
        assert _bytewise_majority(payloads) == b"\xaa\xbb\xcc"

    def test_single_payload(self):
        assert _bytewise_majority([b"\x00\xff"]) == b"\x00\xff"
