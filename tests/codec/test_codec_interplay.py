"""Cross-cutting codec properties that single-module tests miss."""

import itertools
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codec import DNAEncoder, EncodingParameters
from repro.codec.index import IndexCodec
from repro.codec.randomizer import Randomizer
from repro.dna.distance import levenshtein_distance

FAST = EncodingParameters(
    payload_bytes=12, data_columns=16, parity_columns=8, index_bytes=2
)


class TestIndexDiffusion:
    @given(st.integers(min_value=0, max_value=255))
    def test_consecutive_indexes_differ_in_many_bases(self, index):
        codec = IndexCodec(3, randomizer=Randomizer(seed=5))
        a = codec.encode(index)
        b = codec.encode(index + 1)
        differing = sum(1 for x, y in zip(a, b) if x != y)
        # Diffusion spreads a +1 index change across the whole field; the
        # undiffused encoding would differ in at most 4 bases (one byte).
        assert differing >= 5

    def test_diffusion_is_bijective_over_a_window(self):
        codec = IndexCodec(2, randomizer=Randomizer(seed=5))
        encoded = {codec.encode(i) for i in range(5000)}
        assert len(encoded) == 5000

    @given(st.integers(min_value=0, max_value=256**3 - 1))
    def test_roundtrip_with_diffusion(self, index):
        codec = IndexCodec(3, randomizer=Randomizer(seed=5))
        assert codec.decode(codec.encode(index)) == index


class TestStrandSeparation:
    """Strands of one pool must be mutually distant for clustering to work."""

    @settings(max_examples=5)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_repetitive_data_still_yields_distant_strands(self, seed):
        rng = random.Random(seed)
        pattern = bytes(rng.randrange(256) for _ in range(7))
        data = pattern * 30  # highly repetitive payload
        pool = DNAEncoder(FAST).encode(data)
        body_nt = FAST.body_nt
        pairs = list(itertools.combinations(pool.references[:20], 2))
        min_distance = min(
            levenshtein_distance(a, b, bound=body_nt) for a, b in pairs
        )
        # Whitening + index diffusion keep even repetitive data's strands
        # roughly as distant as random strands (~0.45 * length).
        assert min_distance >= 0.3 * body_nt

    def test_all_zero_data_strands_distinct(self):
        pool = DNAEncoder(FAST).encode(bytes(500))
        assert len(set(pool.references)) == len(pool.references)
