"""Reed-Solomon errors+erasures decoding tests."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codec.reed_solomon import ReedSolomonCodec, RSDecodeError

codec16 = ReedSolomonCodec(nsym=16)
messages = st.lists(
    st.integers(min_value=0, max_value=255), min_size=1, max_size=200
)


class TestEncode:
    def test_systematic_prefix(self):
        message = [1, 2, 3, 4, 5]
        codeword = codec16.encode(message)
        assert codeword[:5] == message
        assert len(codeword) == 5 + 16

    def test_codeword_checks_clean(self):
        assert codec16.check(codec16.encode([9] * 30))

    def test_too_long_raises(self):
        with pytest.raises(ValueError):
            codec16.encode([0] * 240)

    def test_invalid_symbol_raises(self):
        with pytest.raises(ValueError):
            codec16.encode([256])

    def test_invalid_nsym(self):
        with pytest.raises(ValueError):
            ReedSolomonCodec(nsym=0)
        with pytest.raises(ValueError):
            ReedSolomonCodec(nsym=255)


class TestDecode:
    @given(messages)
    def test_clean_roundtrip(self, message):
        assert codec16.decode(codec16.encode(message)) == message

    @given(messages, st.data())
    def test_corrects_up_to_half_nsym_errors(self, message, data):
        codeword = codec16.encode(message)
        error_count = data.draw(st.integers(min_value=1, max_value=8))
        positions = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=len(codeword) - 1),
                min_size=error_count,
                max_size=error_count,
                unique=True,
            )
        )
        corrupted = list(codeword)
        for position in positions:
            corrupted[position] ^= data.draw(st.integers(min_value=1, max_value=255))
        assert codec16.decode(corrupted) == message

    @given(messages, st.data())
    def test_corrects_up_to_nsym_erasures(self, message, data):
        codeword = codec16.encode(message)
        erasure_count = data.draw(st.integers(min_value=1, max_value=16))
        positions = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=len(codeword) - 1),
                min_size=erasure_count,
                max_size=erasure_count,
                unique=True,
            )
        )
        corrupted = list(codeword)
        for position in positions:
            corrupted[position] = data.draw(st.integers(min_value=0, max_value=255))
        assert codec16.decode(corrupted, erasures=positions) == message

    @settings(max_examples=30)
    @given(st.data())
    def test_mixed_errata_within_capability(self, data):
        rng = random.Random(data.draw(st.integers(0, 10_000)))
        message = [rng.randrange(256) for _ in range(rng.randint(1, 150))]
        codeword = codec16.encode(message)
        erasures = rng.randint(0, 16)
        errors = rng.randint(0, (16 - erasures) // 2)
        positions = rng.sample(range(len(codeword)), erasures + errors)
        corrupted = list(codeword)
        for position in positions[:erasures]:
            corrupted[position] = rng.randrange(256)
        for position in positions[erasures:]:
            corrupted[position] ^= rng.randrange(1, 256)
        assert codec16.decode(corrupted, erasures=positions[:erasures]) == message

    def test_too_many_erasures_raises(self):
        codeword = codec16.encode([1] * 20)
        with pytest.raises(RSDecodeError):
            codec16.decode(codeword, erasures=list(range(17)))

    def test_beyond_capability_raises_or_mismatches(self):
        codec = ReedSolomonCodec(nsym=4)
        message = list(range(50))
        corrupted = list(codec.encode(message))
        for position in (0, 10, 20):
            corrupted[position] ^= 0x55
        try:
            decoded = codec.decode(corrupted)
        except RSDecodeError:
            return  # detected, the desired outcome
        assert decoded != message  # miscorrection is possible but never silent success

    def test_erasure_position_out_of_range(self):
        codeword = codec16.encode([1, 2, 3])
        with pytest.raises(ValueError):
            codec16.decode(codeword, erasures=[99])

    def test_codeword_shorter_than_parity_raises(self):
        with pytest.raises(ValueError):
            codec16.decode([0] * 10)

    def test_erasure_values_are_ignored(self):
        message = [42] * 30
        codeword = codec16.encode(message)
        corrupted = list(codeword)
        corrupted[3] = 0
        corrupted[7] = 255
        assert codec16.decode(corrupted, erasures=[3, 7]) == message
