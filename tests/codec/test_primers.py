"""Tests for primer library design."""

import random

import pytest

from repro.codec.primers import PrimerPair, design_primer_library
from repro.dna.alphabet import reverse_complement
from repro.dna.distance import hamming_distance
from repro.dna.sequence import gc_content, max_homopolymer


class TestPrimerPair:
    def test_tag_structure(self):
        pair = PrimerPair(forward="AAAA", reverse="CCCC")
        assert pair.tag("GGTT") == "AAAA" + "GGTT" + reverse_complement("CCCC")

    def test_payload_slice_inverts_tag(self):
        pair = PrimerPair(forward="ACGTACGT", reverse="TTGGCCAA")
        assert pair.payload_slice(pair.tag("GATTACA")) == "GATTACA"


class TestDesign:
    def test_constraints_hold(self):
        pairs = design_primer_library(
            3, length=20, min_distance=8, rng=random.Random(5)
        )
        primers = [p.forward for p in pairs] + [p.reverse for p in pairs]
        assert len(primers) == 6
        for primer in primers:
            assert len(primer) == 20
            assert 0.4 <= gc_content(primer) <= 0.6
            assert max_homopolymer(primer) <= 3
        for i, a in enumerate(primers):
            for b in primers[i + 1 :]:
                assert hamming_distance(a, b) >= 8
                assert hamming_distance(reverse_complement(a), b) >= 8

    def test_self_reverse_complement_distance(self):
        pairs = design_primer_library(2, rng=random.Random(5))
        for pair in pairs:
            for primer in (pair.forward, pair.reverse):
                assert hamming_distance(primer, reverse_complement(primer)) >= 8

    def test_deterministic_under_seed(self):
        a = design_primer_library(2, rng=random.Random(1))
        b = design_primer_library(2, rng=random.Random(1))
        assert a == b

    def test_zero_pairs_raises(self):
        with pytest.raises(ValueError):
            design_primer_library(0)

    def test_impossible_distance_raises(self):
        with pytest.raises(ValueError):
            design_primer_library(1, length=5, min_distance=10)

    def test_infeasible_constraints_exhaust_attempts(self):
        with pytest.raises(RuntimeError):
            design_primer_library(
                50,
                length=8,
                min_distance=8,
                rng=random.Random(0),
                max_attempts=200,
            )
