"""Batched Reed-Solomon paths pinned to the scalar codec as oracle.

Every batched method (``encode_batch``, ``syndromes_batch``, ``check_batch``,
``erasure_solve_batch``) must agree with looping the scalar ``encode`` /
``decode`` over the same rows — including at the correction-capability
boundary ``2 * errors + erasures <= nsym``, on all-erasure rows, and on
uncorrectable rows where both paths must fail identically.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codec.galois import GF256, default_field
from repro.codec.reed_solomon import ReedSolomonCodec, RSDecodeError

NSYM = 8
K = 12
N = K + NSYM

codec = ReedSolomonCodec(nsym=NSYM)


def _random_messages(rng, rows, k=K):
    return rng.integers(0, 256, size=(rows, k), dtype=np.uint8)


def _scalar_encode_all(messages):
    return np.array([codec.encode(list(row)) for row in messages], dtype=np.uint8)


class TestSharedTables:
    def test_default_field_is_singleton(self):
        assert default_field() is default_field()
        assert ReedSolomonCodec(nsym=4).field is default_field()

    def test_injected_field_still_honoured(self):
        custom = GF256()
        assert ReedSolomonCodec(nsym=4, field=custom).field is custom

    def test_generator_cached_across_instances(self):
        first = ReedSolomonCodec(nsym=6)
        second = ReedSolomonCodec(nsym=6)
        assert first._generator == second._generator


class TestEncodeBatch:
    @given(
        st.integers(min_value=1, max_value=40),
        st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_matches_scalar_encode(self, rows, seed):
        messages = _random_messages(np.random.default_rng(seed), rows)
        batched = codec.encode_batch(messages)
        assert batched.shape == (rows, N)
        assert np.array_equal(batched, _scalar_encode_all(messages))

    def test_accepts_plain_int_matrix(self):
        messages = [[1, 2, 3], [250, 0, 7]]
        batched = codec.encode_batch(np.array(messages))
        for row, message in zip(batched, messages):
            assert list(row) == codec.encode(message)

    def test_rejects_out_of_range_symbols(self):
        with pytest.raises(ValueError):
            codec.encode_batch(np.array([[0, 300]]))

    def test_rejects_non_matrix(self):
        with pytest.raises(ValueError):
            codec.encode_batch(np.zeros(5, dtype=np.uint8))

    def test_rejects_overlong_messages(self):
        with pytest.raises(ValueError):
            codec.encode_batch(np.zeros((1, 250), dtype=np.uint8))

    def test_parity_matrix_cached(self):
        assert codec.parity_matrix(K) is codec.parity_matrix(K)


class TestSyndromeBatch:
    @given(
        st.integers(min_value=1, max_value=30),
        st.integers(min_value=0, max_value=5),
        st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_matches_scalar_syndromes(self, rows, flips, seed):
        rng = np.random.default_rng(seed)
        codewords = codec.encode_batch(_random_messages(rng, rows))
        for _ in range(flips):
            codewords[rng.integers(rows), rng.integers(N)] ^= rng.integers(1, 256)
        batched = codec.syndromes_batch(codewords)
        for row in range(rows):
            assert list(batched[row]) == codec._syndromes(list(codewords[row]))

    def test_check_batch_flags_corrupted_rows(self):
        rng = np.random.default_rng(11)
        codewords = codec.encode_batch(_random_messages(rng, 10))
        codewords[3, 5] ^= 0x41
        codewords[7, 0] ^= 0x01
        mask = codec.check_batch(codewords)
        expected = np.array([codec.check(list(row)) for row in codewords])
        assert np.array_equal(mask, expected)
        assert not mask[3] and not mask[7]
        assert mask.sum() == 8


def _scalar_decode_or_none(codeword, erasures):
    try:
        return codec.decode(list(codeword), erasures=erasures)
    except RSDecodeError:
        return None


errata_patterns = st.tuples(
    st.integers(min_value=1, max_value=20),  # rows
    st.integers(min_value=0, max_value=NSYM),  # erasure count
    st.integers(min_value=0, max_value=NSYM),  # substitution errors per dirty row
    st.integers(min_value=0, max_value=2**32 - 1),  # seed
)


class TestErasureSolveBatch:
    @given(errata_patterns)
    @settings(max_examples=60, deadline=None)
    def test_agrees_with_scalar_oracle(self, pattern):
        rows, erasure_count, error_count, seed = pattern
        rng = np.random.default_rng(seed)
        clean = codec.encode_batch(_random_messages(rng, rows))
        erasures = sorted(
            rng.choice(N, size=erasure_count, replace=False).tolist()
        )
        received = clean.copy()
        # The decoder zeroes erasure columns before computing syndromes;
        # feed the batched path the same zeroed matrix.
        received[:, erasures] = 0
        # Half the rows also take substitution errors outside the erasures.
        error_columns = [c for c in range(N) if c not in erasures]
        dirty_rows = [r for r in range(rows) if r % 2 == 1]
        for row in dirty_rows:
            for col in rng.choice(
                error_columns, size=min(error_count, len(error_columns)), replace=False
            ):
                received[row, col] ^= int(rng.integers(1, 256))

        candidates, solved = codec.erasure_solve_batch(received, erasures)
        for row in range(rows):
            scalar = _scalar_decode_or_none(received[row], erasures)
            if solved[row]:
                # Solved rows must reproduce the scalar decode exactly; a
                # codeword within nsym erasures of the received word is
                # unique, so agreement is guaranteed, not heuristic.
                assert scalar is not None
                assert list(candidates[row, :K]) == scalar
            else:
                # Unsolved rows genuinely carry errors beyond the erasures.
                assert not codec.check(list(candidates[row]))

    @given(
        st.integers(min_value=1, max_value=10),
        st.integers(min_value=1, max_value=NSYM),
        st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_pure_erasures_always_solve(self, rows, erasure_count, seed):
        rng = np.random.default_rng(seed)
        clean = codec.encode_batch(_random_messages(rng, rows))
        erasures = sorted(rng.choice(N, size=erasure_count, replace=False).tolist())
        received = clean.copy()
        received[:, erasures] = 0
        candidates, solved = codec.erasure_solve_batch(received, erasures)
        assert solved.all()
        assert np.array_equal(candidates, clean)

    def test_boundary_two_errors_plus_erasures(self):
        # 2 * errors + erasures == nsym is still scalar-correctable but the
        # direct solve must hand those rows back as unsolved.
        rng = np.random.default_rng(5)
        clean = codec.encode_batch(_random_messages(rng, 4))
        erasures = [0, 1, 2, 3]  # nsym - 4 left => 2 errors correctable
        received = clean.copy()
        received[:, erasures] = 0
        received[1, 10] ^= 0x3C
        received[1, 11] ^= 0x55
        candidates, solved = codec.erasure_solve_batch(received, erasures)
        assert solved[0] and solved[2] and solved[3]
        assert not solved[1]
        scalar = codec.decode(list(received[1]), erasures=erasures)
        assert scalar == list(clean[1, :K])

    def test_full_nsym_erasures(self):
        rng = np.random.default_rng(8)
        clean = codec.encode_batch(_random_messages(rng, 3))
        erasures = list(range(NSYM))
        received = clean.copy()
        received[:, erasures] = 0
        candidates, solved = codec.erasure_solve_batch(received, erasures)
        assert solved.all()
        assert np.array_equal(candidates, clean)

    def test_too_many_erasures_raises_like_scalar(self):
        received = codec.encode_batch(_random_messages(np.random.default_rng(1), 2))
        erasures = list(range(NSYM + 1))
        with pytest.raises(RSDecodeError):
            codec.erasure_solve_batch(received, erasures)
        with pytest.raises(RSDecodeError):
            codec.decode(list(received[0]), erasures=erasures)

    def test_erasure_position_out_of_range(self):
        received = codec.encode_batch(_random_messages(np.random.default_rng(2), 1))
        with pytest.raises(ValueError):
            codec.erasure_solve_batch(received, [N])

    def test_no_erasures_degenerates_to_syndrome_screen(self):
        rng = np.random.default_rng(21)
        codewords = codec.encode_batch(_random_messages(rng, 6))
        codewords[2, 4] ^= 0x10
        candidates, solved = codec.erasure_solve_batch(codewords, [])
        assert candidates is codewords or np.array_equal(candidates, codewords)
        assert np.array_equal(solved, codec.check_batch(codewords))

    def test_precomputed_syndromes_shortcut(self):
        rng = np.random.default_rng(30)
        clean = codec.encode_batch(_random_messages(rng, 5))
        received = clean.copy()
        received[:, [2, 9]] = 0
        syndromes = codec.syndromes_batch(received)
        with_shortcut = codec.erasure_solve_batch(received, [2, 9], syndromes=syndromes)
        without = codec.erasure_solve_batch(received, [2, 9])
        assert np.array_equal(with_shortcut[0], without[0])
        assert np.array_equal(with_shortcut[1], without[1])
