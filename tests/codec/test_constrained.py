"""Tests for the homopolymer-free rotating codec."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.codec.constrained import ROTATING_CODE_DENSITY, RotatingCodec
from repro.dna.sequence import max_homopolymer


class TestRotatingCodec:
    @given(st.binary(min_size=0, max_size=120).filter(lambda d: len(d) % 4 == 0))
    def test_roundtrip_aligned(self, data):
        codec = RotatingCodec()
        assert codec.decode(codec.encode(data)) == data

    @given(st.binary(max_size=150))
    def test_roundtrip_with_length(self, data):
        codec = RotatingCodec()
        assert codec.decode_with_length(codec.encode_with_length(data)) == data

    @given(st.binary(max_size=200))
    def test_no_homopolymers_by_construction(self, data):
        strand = RotatingCodec().encode_with_length(data)
        assert max_homopolymer(strand) <= 1 or strand == ""

    def test_density_is_32_over_21(self):
        data = bytes(range(240))
        strand = RotatingCodec().encode(data)
        bits = len(data) * 8
        assert bits / len(strand) == pytest.approx(ROTATING_CODE_DENSITY, rel=0.01)

    def test_unaligned_encode_raises(self):
        with pytest.raises(ValueError):
            RotatingCodec().encode(b"abc")

    def test_repeated_base_rejected_on_decode(self):
        with pytest.raises(ValueError, match="repeated"):
            RotatingCodec(start_base="A").decode("CC" + "GT" * 20)

    def test_bad_start_base(self):
        with pytest.raises(ValueError):
            RotatingCodec(start_base="X")

    def test_start_base_changes_encoding(self):
        data = b"\x01\x02\x03\x04"
        a = RotatingCodec(start_base="A").encode(data)
        c = RotatingCodec(start_base="C").encode(data)
        assert a != c
        assert RotatingCodec(start_base="C").decode(c) == data

    def test_wrong_trit_count_rejected(self):
        with pytest.raises(ValueError, match="trits"):
            RotatingCodec().decode("CGT")
