"""Integration tests: file -> strands -> file, with damage in between."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codec import (
    DNADecoder,
    DNAEncoder,
    EncodingParameters,
    GiniLayout,
    DNAMapperLayout,
)
from repro.codec.primers import PrimerPair

FAST = EncodingParameters(
    payload_bytes=10, data_columns=12, parity_columns=6, index_bytes=2
)


def corrupt_substitution(strand: str, position: int) -> str:
    replacement = "C" if strand[position] != "C" else "G"
    return strand[:position] + replacement + strand[position + 1 :]


class TestCleanRoundTrip:
    @given(st.binary(max_size=600))
    @settings(max_examples=20)
    def test_roundtrip(self, data):
        pool = DNAEncoder(FAST).encode(data)
        decoded, report = DNADecoder(FAST).decode(
            pool.references, expected_units=pool.num_units
        )
        assert decoded == data
        assert report.success

    def test_empty_file(self):
        pool = DNAEncoder(FAST).encode(b"")
        decoded, report = DNADecoder(FAST).decode(pool.references)
        assert decoded == b""
        assert report.success

    def test_strand_lengths(self):
        pool = DNAEncoder(FAST).encode(b"some data")
        assert all(len(s) == FAST.body_nt for s in pool.references)

    def test_strand_count_is_units_times_columns(self):
        data = bytes(range(256))
        pool = DNAEncoder(FAST).encode(data)
        assert len(pool.strands) == pool.num_units * FAST.total_columns

    def test_gini_and_dnamapper_roundtrip(self):
        data = bytes(range(200))
        for layout in (GiniLayout(), DNAMapperLayout(list(range(10)))):
            params = EncodingParameters(
                payload_bytes=10,
                data_columns=12,
                parity_columns=6,
                index_bytes=2,
                layout=layout,
            )
            pool = DNAEncoder(params).encode(data)
            decoded, report = DNADecoder(params).decode(pool.references)
            assert decoded == data and report.success

    def test_primer_tagging(self):
        pair = PrimerPair(forward="ACGTACGTACGTACGTACGT", reverse="TGCATGCATGCATGCATGCA")
        params = EncodingParameters(
            payload_bytes=10,
            data_columns=12,
            parity_columns=6,
            index_bytes=2,
            primer_pair=pair,
        )
        pool = DNAEncoder(params).encode(b"tagged")
        assert all(s.startswith(pair.forward) for s in pool.strands)
        bodies = [pair.payload_slice(s) for s in pool.strands]
        decoded, report = DNADecoder(params).decode(bodies)
        assert decoded == b"tagged" and report.success


class TestDamageTolerance:
    def test_survives_missing_strands(self):
        data = bytes(range(250))
        pool = DNAEncoder(FAST).encode(data)
        survivors = [s for i, s in enumerate(pool.references) if i % 4 != 0][
            : len(pool.references)
        ]
        # Dropping every 4th strand stays within 6 erasures per 18-column unit.
        decoded, report = DNADecoder(FAST).decode(
            survivors, expected_units=pool.num_units
        )
        assert decoded == data
        assert report.missing_columns > 0

    def test_survives_substitutions(self):
        data = b"substitution tolerance" * 4
        pool = DNAEncoder(FAST).encode(data)
        strands = list(pool.references)
        for i in (0, 3, 7):
            strands[i] = corrupt_substitution(strands[i], 30)
        decoded, report = DNADecoder(FAST).decode(strands, expected_units=pool.num_units)
        assert decoded == data
        assert report.corrected_rows > 0

    def test_survives_wrong_length_strands(self):
        data = b"length damage" * 5
        pool = DNAEncoder(FAST).encode(data)
        strands = list(pool.references)
        strands[0] = strands[0][:-3]          # truncated
        strands[1] = strands[1] + "ACGT"      # extended
        decoded, report = DNADecoder(FAST).decode(strands, expected_units=pool.num_units)
        assert decoded == data
        assert report.length_adjusted == 2

    def test_duplicate_strands_resolved_by_majority(self):
        data = b"duplicates"
        pool = DNAEncoder(FAST).encode(data)
        strands = list(pool.references)
        corrupted_copy = corrupt_substitution(strands[0], 20)
        strands += [strands[0], corrupted_copy]
        decoded, report = DNADecoder(FAST).decode(strands, expected_units=pool.num_units)
        assert decoded == data
        assert report.duplicate_columns >= 1

    def test_too_much_damage_reports_failure(self):
        data = bytes(range(200))
        pool = DNAEncoder(FAST).encode(data)
        survivors = pool.references[:: 3]  # drop two thirds
        decoded, report = DNADecoder(FAST).decode(
            survivors, expected_units=pool.num_units
        )
        assert not report.success

    def test_bad_index_counted(self):
        data = b"bad index"
        pool = DNAEncoder(FAST).encode(data)
        strands = list(pool.references)
        # Rewrite one strand's index region with garbage that decodes to a
        # column far outside the single encoding unit.
        strands[0] = "T" * 8 + strands[0][8:]
        _, report = DNADecoder(FAST).decode(strands, expected_units=pool.num_units)
        assert report.bad_index >= 1 or report.duplicate_columns >= 1


class TestInference:
    def test_units_inferred_without_hint(self):
        data = bytes(range(250)) * 2
        pool = DNAEncoder(FAST).encode(data)
        decoded, report = DNADecoder(FAST).decode(pool.references)
        assert decoded == data
        assert report.success

    def test_empty_input(self):
        decoded, report = DNADecoder(FAST).decode([])
        assert decoded == b""
        assert not report.success


class TestParameterValidation:
    def test_too_many_columns(self):
        with pytest.raises(ValueError):
            EncodingParameters(data_columns=250, parity_columns=20)

    def test_non_positive_payload(self):
        with pytest.raises(ValueError):
            EncodingParameters(payload_bytes=0)

    def test_index_capacity_enforced(self):
        tiny = EncodingParameters(
            payload_bytes=1, data_columns=2, parity_columns=2, index_bytes=1
        )
        encoder = DNAEncoder(tiny)
        with pytest.raises(ValueError, match="index"):
            encoder.encode(bytes(1000))

    def test_randomization_changes_strands(self):
        data = bytes(64)
        plain = EncodingParameters(
            payload_bytes=10, data_columns=12, parity_columns=6, randomize=False
        )
        whitened = EncodingParameters(
            payload_bytes=10, data_columns=12, parity_columns=6, randomize=True
        )
        pool_plain = DNAEncoder(plain).encode(data)
        pool_whitened = DNAEncoder(whitened).encode(data)
        assert pool_plain.references != pool_whitened.references
        decoded, _ = DNADecoder(whitened).decode(pool_whitened.references)
        assert decoded == data
