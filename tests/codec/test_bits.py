"""Tests for the 2-bit/nucleotide mapping."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.codec.bits import bases_to_bytes, bytes_to_bases, bytes_to_bases_batch


class TestMapping:
    def test_known_values(self):
        assert bytes_to_bases([0x00]) == "AAAA"
        assert bytes_to_bases([0xFF]) == "TTTT"
        assert bytes_to_bases([0x1B]) == "ACGT"  # 00 01 10 11

    def test_four_bases_per_byte(self):
        assert len(bytes_to_bases(bytes(10))) == 40

    @given(st.binary(max_size=200))
    def test_roundtrip(self, data):
        assert bases_to_bytes(bytes_to_bases(data)) == data

    def test_length_not_multiple_of_four_raises(self):
        with pytest.raises(ValueError):
            bases_to_bytes("ACG")

    def test_invalid_base_raises(self):
        with pytest.raises(ValueError):
            bases_to_bytes("ACGU")

    def test_empty(self):
        assert bytes_to_bases(b"") == ""
        assert bases_to_bytes("") == b""


class TestBatchedMapping:
    @given(
        st.integers(min_value=1, max_value=16),
        st.integers(min_value=0, max_value=40),
        st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_batch_matches_scalar(self, rows, width, seed):
        rng = np.random.default_rng(seed)
        payloads = rng.integers(0, 256, size=(rows, width), dtype=np.uint8)
        batched = bytes_to_bases_batch(payloads)
        assert batched == [
            bytes_to_bases(payloads[row].tobytes()) for row in range(rows)
        ]

    @given(st.binary(min_size=0, max_size=80))
    def test_batch_roundtrip(self, data):
        payloads = np.frombuffer(data, dtype=np.uint8).reshape(1, -1)
        (strand,) = bytes_to_bases_batch(payloads)
        assert bases_to_bytes(strand) == data

    def test_rejects_non_matrix(self):
        with pytest.raises(ValueError):
            bytes_to_bases_batch(np.zeros(4, dtype=np.uint8))
