"""Tests for the 2-bit/nucleotide mapping."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.codec.bits import bases_to_bytes, bytes_to_bases


class TestMapping:
    def test_known_values(self):
        assert bytes_to_bases([0x00]) == "AAAA"
        assert bytes_to_bases([0xFF]) == "TTTT"
        assert bytes_to_bases([0x1B]) == "ACGT"  # 00 01 10 11

    def test_four_bases_per_byte(self):
        assert len(bytes_to_bases(bytes(10))) == 40

    @given(st.binary(max_size=200))
    def test_roundtrip(self, data):
        assert bases_to_bytes(bytes_to_bases(data)) == data

    def test_length_not_multiple_of_four_raises(self):
        with pytest.raises(ValueError):
            bases_to_bytes("ACG")

    def test_invalid_base_raises(self):
        with pytest.raises(ValueError):
            bases_to_bytes("ACGU")

    def test_empty(self):
        assert bytes_to_bases(b"") == ""
        assert bases_to_bytes("") == b""
