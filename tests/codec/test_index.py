"""Tests for the molecule index codec."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.codec.index import IndexCodec
from repro.codec.randomizer import Randomizer


class TestIndexCodec:
    @given(st.integers(min_value=0, max_value=256**3 - 1))
    def test_roundtrip(self, index):
        codec = IndexCodec(3)
        assert codec.decode(codec.encode(index)) == index

    @given(st.integers(min_value=0, max_value=256**2 - 1))
    def test_whitened_roundtrip(self, index):
        codec = IndexCodec(2, randomizer=Randomizer(seed=77))
        assert codec.decode(codec.encode(index)) == index

    def test_whitening_changes_encoding(self):
        plain = IndexCodec(3)
        whitened = IndexCodec(3, randomizer=Randomizer(seed=77))
        assert plain.encode(0) != whitened.encode(0)

    def test_whitening_kills_homopolymer_prefix(self):
        # Index 0 must not encode as AAAAAAAAAAAA.
        whitened = IndexCodec(3, randomizer=Randomizer(seed=77))
        assert whitened.encode(0) != "A" * 12

    def test_out_of_range_raises(self):
        codec = IndexCodec(1)
        with pytest.raises(ValueError):
            codec.encode(256)
        with pytest.raises(ValueError):
            codec.encode(-1)

    def test_nt_width(self):
        assert IndexCodec(3).index_nt == 12
        assert IndexCodec(3).capacity == 256**3

    def test_decode_short_sequence_raises(self):
        with pytest.raises(ValueError):
            IndexCodec(3).decode("ACGT")

    def test_decode_uses_prefix_only(self):
        codec = IndexCodec(2)
        encoded = codec.encode(1234)
        assert codec.decode(encoded + "ACGTACGT") == 1234

    def test_invalid_width_raises(self):
        with pytest.raises(ValueError):
            IndexCodec(0)
