"""The vectorized GF(256) layer pinned against the scalar field arithmetic."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codec.galois import default_field
from repro.codec.gf_numpy import gf_alpha_power, gf_inv, gf_matmul, gf_mul

field = default_field()
symbols = st.integers(min_value=0, max_value=255)


class TestGfMul:
    def test_full_multiplication_table(self):
        left = np.repeat(np.arange(256, dtype=np.uint8), 256)
        right = np.tile(np.arange(256, dtype=np.uint8), 256)
        got = gf_mul(left, right)
        expected = np.array(
            [field.mul(int(a), int(b)) for a, b in zip(left, right)],
            dtype=np.uint8,
        )
        assert np.array_equal(got, expected)

    def test_zero_annihilates(self):
        values = np.arange(256, dtype=np.uint8)
        assert not gf_mul(values, np.zeros(256, dtype=np.uint8)).any()
        assert not gf_mul(np.zeros(256, dtype=np.uint8), values).any()

    def test_broadcasting(self):
        matrix = np.arange(12, dtype=np.uint8).reshape(3, 4)
        scalar = np.uint8(7)
        got = gf_mul(matrix, scalar)
        expected = np.array(
            [[field.mul(int(v), 7) for v in row] for row in matrix],
            dtype=np.uint8,
        )
        assert np.array_equal(got, expected)


class TestGfMatmul:
    @given(
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=50, deadline=None)
    def test_matches_naive_matmul(self, m, k, n, seed):
        rng = np.random.default_rng(seed)
        left = rng.integers(0, 256, size=(m, k), dtype=np.uint8)
        right = rng.integers(0, 256, size=(k, n), dtype=np.uint8)
        got = gf_matmul(left, right)
        expected = np.zeros((m, n), dtype=np.uint8)
        for i in range(m):
            for j in range(n):
                acc = 0
                for p in range(k):
                    acc ^= field.mul(int(left[i, p]), int(right[p, j]))
                expected[i, j] = acc
        assert np.array_equal(got, expected)

    def test_identity(self):
        rng = np.random.default_rng(3)
        matrix = rng.integers(0, 256, size=(5, 5), dtype=np.uint8)
        assert np.array_equal(gf_matmul(matrix, np.eye(5, dtype=np.uint8)), matrix)

    def test_chunked_path_matches_single_block(self):
        # Wide enough that rows * k * n exceeds the block budget only when
        # forced small; monkeypatching the constant is fragile, so instead
        # check associativity holds on a matrix big enough to span blocks.
        rng = np.random.default_rng(9)
        left = rng.integers(0, 256, size=(64, 32), dtype=np.uint8)
        right = rng.integers(0, 256, size=(32, 16), dtype=np.uint8)
        whole = gf_matmul(left, right)
        stacked = np.concatenate([gf_matmul(left[:10], right), gf_matmul(left[10:], right)])
        assert np.array_equal(whole, stacked)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            gf_matmul(np.zeros((2, 3), dtype=np.uint8), np.zeros((4, 2), dtype=np.uint8))


class TestGfAlphaPower:
    def test_matches_field_exp(self):
        exponents = np.arange(0, 1000, dtype=np.int64)
        got = gf_alpha_power(exponents)
        expected = np.array([field.exp[e % 255] for e in exponents], dtype=np.uint8)
        assert np.array_equal(got, expected)


class TestGfInv:
    @given(
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_on_vandermonde(self, size, seed):
        # Vandermonde matrices with distinct non-zero nodes are the
        # invertible inputs the erasure solver feeds in.
        rng = np.random.default_rng(seed)
        nodes = rng.choice(np.arange(1, 255), size=size, replace=False)
        matrix = gf_alpha_power(
            np.arange(size, dtype=np.int64)[:, None] * nodes[None, :].astype(np.int64)
        )
        inverse = gf_inv(matrix)
        assert np.array_equal(gf_matmul(matrix, inverse), np.eye(size, dtype=np.uint8))
        assert np.array_equal(gf_matmul(inverse, matrix), np.eye(size, dtype=np.uint8))

    def test_singular_raises(self):
        singular = np.array([[1, 2], [1, 2]], dtype=np.uint8)
        with pytest.raises(ZeroDivisionError):
            gf_inv(singular)

    def test_non_square_raises(self):
        with pytest.raises(ValueError):
            gf_inv(np.zeros((2, 3), dtype=np.uint8))
