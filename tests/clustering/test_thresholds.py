"""Threshold auto-configuration tests."""

import random

import numpy as np
import pytest

from repro.clustering import estimate_thresholds
from repro.clustering.thresholds import sample_signature_distances
from repro.dna.qgram import QGramSignature, sample_grams


class TestEstimateThresholds:
    def test_bimodal_separation(self, rng):
        # Mostly inter distances near 40, a few intra near 5.
        distances = [rng.gauss(40, 3) for _ in range(950)]
        distances += [rng.gauss(5, 1.5) for _ in range(50)]
        estimate = estimate_thresholds(distances)
        assert 5 < estimate.theta_low < estimate.theta_high < 40
        assert estimate.inter_center == pytest.approx(40, abs=3)

    def test_ordering_invariant(self, rng):
        distances = [rng.gauss(30, 4) for _ in range(500)]
        estimate = estimate_thresholds(distances)
        assert 0 <= estimate.theta_low <= estimate.theta_high

    def test_degenerate_identical_distances(self):
        estimate = estimate_thresholds([10.0] * 100)
        assert estimate.theta_high < 10.0

    def test_too_few_samples_raise(self):
        with pytest.raises(ValueError):
            estimate_thresholds([1.0, 2.0])

    def test_sigma_ordering_validation(self):
        with pytest.raises(ValueError):
            estimate_thresholds([1.0] * 20, low_sigmas=1.0, high_sigmas=2.0)

    def test_histogram_export(self, rng):
        distances = [rng.gauss(30, 4) for _ in range(200)]
        estimate = estimate_thresholds(distances)
        counts, edges = estimate.histogram(bins=10)
        assert counts.sum() == 200
        assert len(edges) == 11


class TestSampling:
    def test_sample_counts(self, rng):
        grams = sample_grams(16, 3, rng)
        scheme = QGramSignature(grams)
        signatures = [
            scheme.compute("".join(rng.choice("ACGT") for _ in range(40)))
            for _ in range(100)
        ]
        distances = sample_signature_distances(
            signatures, QGramSignature.distance, probes=5, sample_size=20, rng=rng
        )
        assert len(distances) == 5 * 20

    def test_probe_excluded_from_sample(self, rng):
        signatures = [np.array([i], dtype=np.int32) for i in range(10)]

        def distance(a, b):
            assert not np.array_equal(a, b) or True
            return abs(int(a[0]) - int(b[0]))

        distances = sample_signature_distances(
            signatures, distance, probes=10, sample_size=9, rng=rng
        )
        # A probe never compares against itself, so no zero distances.
        assert 0.0 not in distances

    def test_too_few_signatures_raise(self, rng):
        with pytest.raises(ValueError):
            sample_signature_distances([np.zeros(1)], lambda a, b: 0, rng=rng)
