"""Clustering metric tests on crafted cases."""

import pytest

from repro.clustering import (
    cluster_purity,
    cluster_quality,
    clustering_accuracy,
    confusion_counts,
)


TRUTH = [[0, 1, 2], [3, 4], [5]]


class TestAccuracy:
    def test_perfect(self):
        assert clustering_accuracy(TRUTH, TRUTH) == 1.0

    def test_split_cluster_not_recovered(self):
        predicted = [[0, 1], [2], [3, 4], [5]]
        assert clustering_accuracy(predicted, TRUTH) == pytest.approx(2 / 3)

    def test_split_recovered_with_lower_gamma(self):
        predicted = [[0, 1], [2], [3, 4], [5]]
        assert clustering_accuracy(predicted, TRUTH, gamma=0.6) == 1.0

    def test_contaminated_cluster_not_recovered(self):
        predicted = [[0, 1, 2, 5], [3, 4]]
        # Cluster {5} is inside a foreign cluster and {0,1,2} is impure.
        assert clustering_accuracy(predicted, TRUTH) == pytest.approx(1 / 3)

    def test_merged_clusters_not_recovered(self):
        predicted = [[0, 1, 2, 3, 4], [5]]
        assert clustering_accuracy(predicted, TRUTH) == pytest.approx(1 / 3)

    def test_gamma_validation(self):
        with pytest.raises(ValueError):
            clustering_accuracy(TRUTH, TRUTH, gamma=0.0)

    def test_empty_truth_raises(self):
        with pytest.raises(ValueError):
            clustering_accuracy(TRUTH, [])

    def test_duplicate_read_raises(self):
        with pytest.raises(ValueError):
            clustering_accuracy([[0, 1], [1, 2]], TRUTH)


class TestPurity:
    def test_perfect(self):
        assert cluster_purity(TRUTH, TRUTH) == 1.0

    def test_mixed_cluster(self):
        predicted = [[0, 1, 3], [2, 4, 5]]
        # Majorities: {0,1} (size 2) in the first cluster, any single read
        # in the second (all three have distinct true labels) -> 3/6.
        assert cluster_purity(predicted, TRUTH) == pytest.approx(3 / 6)

    def test_empty_prediction(self):
        assert cluster_purity([], TRUTH) == 0.0

    def test_both_empty(self):
        assert cluster_purity([], []) == 0.0

    def test_empty_clusters_inside_prediction_ignored(self):
        predicted = [[], [0, 1, 2], [], [3, 4], [5], []]
        assert cluster_purity(predicted, TRUTH) == 1.0

    def test_all_singletons_are_pure(self):
        predicted = [[read] for read in range(6)]
        assert cluster_purity(predicted, TRUTH) == 1.0

    def test_reads_outside_truth_count_against_purity(self):
        # Read 9 has no true label; it can never be "pure".
        assert cluster_purity([[0, 9]], TRUTH) == pytest.approx(1 / 2)


class TestClusterQuality:
    def test_perfect_clustering(self):
        quality = cluster_quality(TRUTH, TRUTH)
        assert quality.clusters == quality.true_clusters == 3
        assert quality.purity == 1.0
        assert quality.fragmentation == 0
        assert quality.under_merged == 0
        assert quality.over_merged == 0

    def test_split_cluster_counts_fragments(self):
        predicted = [[0], [1], [2], [3, 4], [5]]
        quality = cluster_quality(predicted, TRUTH)
        # {0,1,2} landed in three homes: one under-merged truth cluster
        # contributing two excess fragments.
        assert quality.under_merged == 1
        assert quality.fragmentation == 2
        assert quality.over_merged == 0
        assert quality.purity == 1.0

    def test_merged_clusters_counted_once(self):
        predicted = [[0, 1, 2, 3, 4], [5]]
        quality = cluster_quality(predicted, TRUTH)
        assert quality.over_merged == 1
        assert quality.under_merged == 0
        assert quality.purity == pytest.approx(4 / 6)

    def test_empty_clusters_not_counted(self):
        predicted = [[], [0, 1, 2], [3, 4], [5], []]
        quality = cluster_quality(predicted, [[], *TRUTH])
        assert quality.clusters == 3
        assert quality.true_clusters == 3


class TestConfusion:
    def test_perfect_has_no_fp_fn(self):
        tp, fp, fn, tn = confusion_counts(TRUTH, TRUTH)
        assert fp == 0 and fn == 0
        assert tp == 3 + 1  # pairs within {0,1,2} (3) and {3,4} (1)

    def test_merged_increases_fp(self):
        predicted = [[0, 1, 2, 3, 4, 5]]
        tp, fp, fn, tn = confusion_counts(predicted, TRUTH)
        assert fn == 0
        assert fp == 15 - 4  # all pairs predicted same; only 4 truly same

    def test_split_increases_fn(self):
        predicted = [[0], [1], [2], [3], [4], [5]]
        tp, fp, fn, tn = confusion_counts(predicted, TRUTH)
        assert tp == 0 and fp == 0 and fn == 4
