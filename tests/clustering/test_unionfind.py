"""Union-find invariants."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.clustering import UnionFind


class TestUnionFind:
    def test_initially_all_singletons(self):
        uf = UnionFind(5)
        assert uf.components == 5
        assert not uf.connected(0, 1)

    def test_union_connects(self):
        uf = UnionFind(4)
        assert uf.union(0, 1)
        assert uf.connected(0, 1)
        assert uf.components == 3

    def test_union_is_idempotent(self):
        uf = UnionFind(4)
        uf.union(0, 1)
        assert not uf.union(1, 0)
        assert uf.components == 3

    def test_transitivity(self):
        uf = UnionFind(5)
        uf.union(0, 1)
        uf.union(1, 2)
        assert uf.connected(0, 2)

    def test_groups_partition(self):
        uf = UnionFind(6)
        uf.union(0, 1)
        uf.union(2, 3)
        groups = uf.groups()
        flattened = sorted(x for group in groups for x in group)
        assert flattened == list(range(6))
        assert len(groups) == uf.components

    def test_negative_size_raises(self):
        with pytest.raises(ValueError):
            UnionFind(-1)

    @given(
        st.integers(min_value=1, max_value=40),
        st.lists(st.tuples(st.integers(0, 39), st.integers(0, 39)), max_size=60),
    )
    def test_components_match_groups(self, size, unions):
        uf = UnionFind(size)
        for left, right in unions:
            if left < size and right < size:
                uf.union(left, right)
        assert len(uf.groups()) == uf.components
        # connected() agrees with group membership
        groups = uf.groups()
        label = {}
        for g, members in enumerate(groups):
            for m in members:
                label[m] = g
        for left, right in unions:
            if left < size and right < size:
                assert label[left] == label[right]
