"""Clustering algorithm tests (scaled down for test speed)."""

import random

import pytest

from repro.clustering import (
    ClusteringConfig,
    RashtchianClusterer,
    clustering_accuracy,
)
from repro.dna.alphabet import random_sequence
from repro.simulation import ConstantCoverage, IdentityChannel, IIDChannel, sequence_pool

FAST = dict(rounds=12, num_grams=48)


def make_run(rng, clusters=40, length=80, coverage=6, error=0.06):
    references = [random_sequence(length, rng) for _ in range(clusters)]
    channel = IIDChannel.from_total_rate(error) if error else IdentityChannel()
    return sequence_pool(references, channel, ConstantCoverage(coverage), rng)


class TestConfigValidation:
    def test_bad_signature(self):
        with pytest.raises(ValueError):
            ClusteringConfig(signature="kgram")

    def test_threshold_pairing(self):
        with pytest.raises(ValueError):
            ClusteringConfig(theta_low=1.0)
        with pytest.raises(ValueError):
            ClusteringConfig(theta_low=5.0, theta_high=1.0)

    def test_bad_rounds(self):
        with pytest.raises(ValueError):
            ClusteringConfig(rounds=0)

    def test_empty_reads_raise(self):
        with pytest.raises(ValueError):
            RashtchianClusterer().cluster([])


class TestClusteringQuality:
    def test_noiseless_reads_cluster_perfectly(self, rng):
        run = make_run(rng, error=0.0)
        result = RashtchianClusterer(ClusteringConfig(seed=1, **FAST)).cluster(
            run.reads
        )
        accuracy = clustering_accuracy(
            result.clusters, list(run.true_clusters().values())
        )
        assert accuracy == 1.0

    def test_low_noise_high_accuracy(self, rng):
        run = make_run(rng, error=0.03)
        result = RashtchianClusterer(ClusteringConfig(seed=1, **FAST)).cluster(
            run.reads
        )
        accuracy = clustering_accuracy(
            result.clusters, list(run.true_clusters().values())
        )
        assert accuracy >= 0.9

    def test_wgram_variant(self, rng):
        run = make_run(rng, error=0.06)
        result = RashtchianClusterer(
            ClusteringConfig(signature="wgram", seed=1, **FAST)
        ).cluster(run.reads)
        accuracy = clustering_accuracy(
            result.clusters, list(run.true_clusters().values())
        )
        assert accuracy >= 0.85

    def test_clusters_partition_reads(self, rng):
        run = make_run(rng)
        result = RashtchianClusterer(ClusteringConfig(seed=1, **FAST)).cluster(
            run.reads
        )
        flattened = sorted(i for cluster in result.clusters for i in cluster)
        assert flattened == list(range(len(run.reads)))

    def test_deterministic_under_seed(self, rng):
        run = make_run(rng, clusters=15)
        a = RashtchianClusterer(ClusteringConfig(seed=9, **FAST)).cluster(run.reads)
        b = RashtchianClusterer(ClusteringConfig(seed=9, **FAST)).cluster(run.reads)
        assert a.clusters == b.clusters


class TestStatistics:
    def test_stats_populated(self, rng):
        run = make_run(rng, clusters=20)
        result = RashtchianClusterer(ClusteringConfig(seed=1, **FAST)).cluster(
            run.reads
        )
        assert result.signature_comparisons > 0
        assert result.merges > 0
        assert result.signature_seconds >= 0
        assert result.total_seconds >= result.clustering_seconds
        assert result.threshold_estimate is not None

    def test_explicit_thresholds_skip_estimation(self, rng):
        run = make_run(rng, clusters=15)
        config = ClusteringConfig(theta_low=5.0, theta_high=20.0, seed=1, **FAST)
        result = RashtchianClusterer(config).cluster(run.reads)
        assert result.threshold_estimate is None
        assert result.theta_low == 5.0

    def test_wgram_signatures_cost_more_to_compute(self, rng):
        # The paper's Table II: w-gram signature calculation is slower.
        run = make_run(rng, clusters=60, coverage=8)
        q = RashtchianClusterer(
            ClusteringConfig(signature="qgram", seed=1, **FAST)
        ).cluster(run.reads)
        w = RashtchianClusterer(
            ClusteringConfig(signature="wgram", seed=1, **FAST)
        ).cluster(run.reads)
        assert w.signature_seconds > 0 and q.signature_seconds > 0


class TestParallelSignatures:
    def test_worker_pool_matches_serial(self, rng):
        run = make_run(rng, clusters=15)
        serial = RashtchianClusterer(ClusteringConfig(seed=3, **FAST)).cluster(
            run.reads
        )
        parallel = RashtchianClusterer(
            ClusteringConfig(seed=3, workers=2, **FAST)
        ).cluster(run.reads)
        assert serial.clusters == parallel.clusters


class TestColumnarInput:
    """A ReadPool input must be indistinguishable from the list of reads."""

    def test_pool_matches_list_any_worker_count(self, rng):
        from repro.dna.readpool import ReadPool

        run = make_run(rng, clusters=20, coverage=7, error=0.08)
        baseline = RashtchianClusterer(ClusteringConfig(seed=3, **FAST)).cluster(
            run.reads
        )
        for workers in (1, 4):
            result = RashtchianClusterer(
                ClusteringConfig(seed=3, workers=workers, **FAST)
            ).cluster(ReadPool.from_strings(run.reads))
            assert result.clusters == baseline.clusters
            assert result.edit_comparisons == baseline.edit_comparisons
            assert result.signature_comparisons == baseline.signature_comparisons

    def test_non_acgt_reads_still_cluster(self, rng):
        # Reads off the ACGT alphabet keep the scalar string path end to
        # end; they must cluster, not crash.
        reads = ["ACGTNACGT", "ACGTNACGT", "TTTTTTTTT", "TTTTTTTTT"]
        result = RashtchianClusterer(ClusteringConfig(seed=3, **FAST)).cluster(reads)
        assert sorted(index for cluster in result.clusters for index in cluster) == [
            0,
            1,
            2,
            3,
        ]
