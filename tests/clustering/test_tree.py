"""Tests for the Clover-style prefix-tree clusterer."""

import pytest

from repro.clustering import (
    TreeClusterer,
    TreeClusteringConfig,
    clustering_accuracy,
)
from repro.dna.alphabet import random_sequence
from repro.simulation import ConstantCoverage, IdentityChannel, IIDChannel, sequence_pool


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            TreeClusteringConfig(probe_length=0)
        with pytest.raises(ValueError):
            TreeClusteringConfig(probe_offsets=())
        with pytest.raises(ValueError):
            TreeClusteringConfig(wobble=-1)

    def test_empty_reads_raise(self):
        with pytest.raises(ValueError):
            TreeClusterer().cluster([])


class TestClustering:
    def test_noiseless_reads_cluster_perfectly(self, rng):
        references = [random_sequence(80, rng) for _ in range(40)]
        run = sequence_pool(references, IdentityChannel(), ConstantCoverage(5), rng)
        result = TreeClusterer().cluster(run.reads)
        accuracy = clustering_accuracy(
            result.clusters, list(run.true_clusters().values())
        )
        assert accuracy == 1.0

    def test_low_noise_accuracy(self, rng):
        references = [random_sequence(100, rng) for _ in range(60)]
        run = sequence_pool(
            references, IIDChannel.from_total_rate(0.02), ConstantCoverage(8), rng
        )
        result = TreeClusterer().cluster(run.reads)
        accuracy = clustering_accuracy(
            result.clusters, list(run.true_clusters().values()), gamma=0.8
        )
        assert accuracy >= 0.8

    def test_no_edit_distance_calls(self, rng):
        references = [random_sequence(80, rng) for _ in range(20)]
        run = sequence_pool(references, IdentityChannel(), ConstantCoverage(4), rng)
        result = TreeClusterer().cluster(run.reads)
        assert result.edit_comparisons == 0

    def test_clusters_partition_reads(self, rng):
        references = [random_sequence(80, rng) for _ in range(30)]
        run = sequence_pool(
            references, IIDChannel.from_total_rate(0.05), ConstantCoverage(5), rng
        )
        result = TreeClusterer().cluster(run.reads)
        flattened = sorted(i for cluster in result.clusters for i in cluster)
        assert flattened == list(range(len(run.reads)))

    def test_unrelated_reads_stay_apart(self, rng):
        reads = [random_sequence(100, rng) for _ in range(50)]
        result = TreeClusterer().cluster(reads)
        # Random 100-mers share 12-base windows with vanishing probability.
        assert len(result.clusters) >= 48
