"""Key-value storage system tests (Section II-F end to end)."""

import pytest

from repro.clustering import ClusteringConfig
from repro.pipeline import DNAStorageSystem, StorageSystemConfig
from repro.simulation import ConstantCoverage, IIDChannel

FILES = {
    "alpha": b"alpha file contents " * 8,
    "beta": b"beta file, different payload " * 6,
}


@pytest.fixture(scope="module")
def system():
    config = StorageSystemConfig(
        payload_bytes=12,
        data_columns=16,
        parity_columns=8,
        channel=IIDChannel.from_total_rate(0.04),
        coverage=ConstantCoverage(8),
        clustering=ClusteringConfig(rounds=12, num_grams=48, seed=1),
        max_files=3,
        seed=9,
    )
    storage = DNAStorageSystem(config)
    for key, data in FILES.items():
        storage.store(key, data)
    return storage


class TestStore:
    def test_keys_listed(self, system):
        assert system.keys == sorted(FILES)

    def test_molecules_accumulate(self, system):
        assert len(system) > 0

    def test_duplicate_key_rejected(self, system):
        with pytest.raises(ValueError, match="already stored"):
            system.store("alpha", b"x")

    def test_library_exhaustion(self, system):
        system_full = system  # max_files=3, two used
        system_full.store("gamma", b"third")
        with pytest.raises(ValueError, match="exhausted"):
            system_full.store("delta", b"fourth")


class TestRetrieve:
    def test_each_file_recovered_exactly(self, system):
        for key, data in FILES.items():
            result = system.retrieve(key)
            assert result.data == data, key
            assert result.success

    def test_unknown_key(self, system):
        with pytest.raises(KeyError):
            system.retrieve("missing")

    def test_retrievals_are_isolated(self, system):
        # Retrieving one file never returns another file's bytes.
        assert system.retrieve("alpha").data != FILES["beta"]


class TestSampleCopy:
    def test_copy_retrieves_independently(self, system):
        copy = system.sample_copy(0.9)
        assert copy.keys == system.keys
        assert len(copy) < len(system) or len(copy) == len(system)
        result = copy.retrieve("alpha")
        assert result.data == FILES["alpha"]

    def test_copy_does_not_mutate_original(self, system):
        before = len(system)
        system.sample_copy(0.5)
        assert len(system) == before
