"""End-to-end pipeline integration tests (small, fast configurations)."""

import pytest

from repro.codec import EncodingParameters, design_primer_library
from repro.clustering import ClusteringConfig
from repro.pipeline import Pipeline, PipelineConfig
from repro.reconstruction import BMAReconstructor, DoubleSidedBMAReconstructor
from repro.simulation import ConstantCoverage, IIDChannel

import random

FAST_ENCODING = EncodingParameters(
    payload_bytes=12, data_columns=16, parity_columns=8, index_bytes=2
)
FAST_CLUSTERING = ClusteringConfig(rounds=12, num_grams=48, seed=1)


def fast_config(**overrides):
    defaults = dict(
        encoding=FAST_ENCODING,
        channel=IIDChannel.from_total_rate(0.04),
        coverage=ConstantCoverage(8),
        clustering=FAST_CLUSTERING,
        seed=7,
    )
    defaults.update(overrides)
    return PipelineConfig(**defaults)


class TestEndToEnd:
    def test_roundtrip(self):
        data = b"end to end dna storage" * 10
        result = Pipeline(fast_config()).run(data)
        assert result.success
        assert result.data == data

    def test_stage_timings_populated(self):
        result = Pipeline(fast_config()).run(b"timing check" * 5)
        timings = result.timings.as_dict()
        for stage in ("encoding", "simulation", "clustering", "reconstruction"):
            assert timings[stage] > 0
        assert timings["total"] == pytest.approx(
            sum(v for k, v in timings.items() if k != "total")
        )

    def test_intermediate_artifacts_exposed(self):
        result = Pipeline(fast_config()).run(b"artifacts" * 8)
        assert result.sequencing is not None
        assert result.clustering is not None
        assert len(result.reconstructions) > 0
        assert result.decode_report is not None

    def test_alternative_reconstructors(self):
        data = b"swappable stages!" * 6
        for reconstructor in (BMAReconstructor(), DoubleSidedBMAReconstructor()):
            result = Pipeline(fast_config(reconstructor=reconstructor)).run(data)
            assert result.data == data

    def test_primer_tagged_with_orientation_flips(self):
        pair = design_primer_library(1, rng=random.Random(5))[0]
        config = fast_config(
            encoding=EncodingParameters(
                payload_bytes=12,
                data_columns=16,
                parity_columns=8,
                index_bytes=2,
                primer_pair=pair,
            ),
            reverse_orientation_prob=0.5,
        )
        data = b"wetlab-realistic path" * 4
        result = Pipeline(config).run(data)
        assert result.data == data


class TestRunFromReads:
    def test_reads_replace_simulation(self):
        data = b"external reads" * 6
        pipeline = Pipeline(fast_config())
        full = pipeline.run(data)
        reads = full.sequencing.reads
        replayed = pipeline.run_from_reads(reads, expected_units=full.encoded.num_units)
        assert replayed.data == data
        assert replayed.timings.simulation == 0.0

    def test_empty_reads(self):
        result = Pipeline(fast_config()).run_from_reads([])
        assert result.data == b""
        assert not result.success


class TestConfigValidation:
    def test_orientation_requires_primers(self):
        with pytest.raises(ValueError):
            PipelineConfig(reverse_orientation_prob=0.5)

    def test_min_cluster_size(self):
        with pytest.raises(ValueError):
            PipelineConfig(min_cluster_size=0)


class TestWorkerDeterminism:
    """Sharded stages must be invisible in the output at any worker count."""

    def test_workers_do_not_change_results(self):
        data = random.Random(21).randbytes(150)
        serial = Pipeline(fast_config(workers=1)).run(data)
        parallel = Pipeline(fast_config(workers=4)).run(data)
        assert serial.sequencing.reads == parallel.sequencing.reads
        assert serial.sequencing.origins == parallel.sequencing.origins
        assert serial.clustering.clusters == parallel.clustering.clusters
        assert serial.reconstructions == parallel.reconstructions
        assert serial.decode_report == parallel.decode_report
        assert serial.quality.as_dict() == parallel.quality.as_dict()
        assert serial.data == parallel.data == data

    def test_workers_validation(self):
        with pytest.raises(ValueError):
            PipelineConfig(workers=0)


class TestColumnarPlane:
    """The pipeline must hand pooled reads and cluster views downstream."""

    def test_clusterer_and_reconstructor_see_columnar_inputs(self):
        from repro.clustering import RashtchianClusterer
        from repro.dna.readpool import ReadPool, ReadPoolView

        seen = {}

        class SpyClusterer:
            def cluster(self, reads):
                seen["cluster_input"] = type(reads)
                return RashtchianClusterer(FAST_CLUSTERING).cluster(reads)

        class SpyReconstructor(BMAReconstructor):
            def reconstruct_batch(self, clusters, expected_length):
                seen["cluster_types"] = {type(c) for c in clusters}
                return super().reconstruct_batch(clusters, expected_length)

        data = random.Random(3).randbytes(100)
        config = fast_config(
            clusterer=SpyClusterer(), reconstructor=SpyReconstructor()
        )
        result = Pipeline(config).run(data)
        assert result.data == data
        assert issubclass(seen["cluster_input"], ReadPool)
        assert seen["cluster_types"] == {ReadPoolView}
