"""Modularity integration tests: swapping stages in and out.

The paper's central design claim is that every stage of the pipeline can be
replaced independently.  These tests swap in every alternative the toolkit
ships and verify the pipeline still recovers files.
"""

import pytest

from repro.clustering import ClusteringConfig, TreeClusterer, TreeClusteringConfig
from repro.codec import EncodingParameters, GiniLayout
from repro.pipeline import Pipeline, PipelineConfig
from repro.reconstruction import (
    NWConsensusReconstructor,
    TrellisMAPReconstructor,
)
from repro.simulation import (
    ComposedChannel,
    ConstantCoverage,
    IIDChannel,
    PoissonCoverage,
    SOLQCChannel,
    WetlabReferenceChannel,
)

DATA = b"swap any stage, keep the pipeline" * 8

FAST_ENCODING = EncodingParameters(
    payload_bytes=12, data_columns=16, parity_columns=8, index_bytes=2
)
FAST_CLUSTERING = ClusteringConfig(rounds=12, num_grams=48, seed=1)


def config(**overrides) -> PipelineConfig:
    defaults = dict(
        encoding=FAST_ENCODING,
        channel=IIDChannel.from_total_rate(0.04),
        coverage=ConstantCoverage(8),
        clustering=FAST_CLUSTERING,
        seed=11,
    )
    defaults.update(overrides)
    return PipelineConfig(**defaults)


class TestSwappableChannels:
    def test_solqc_channel(self):
        result = Pipeline(config(channel=SOLQCChannel())).run(DATA)
        assert result.data == DATA

    def test_illumina_preset(self):
        channel = WetlabReferenceChannel.illumina()
        result = Pipeline(config(channel=channel)).run(DATA)
        assert result.data == DATA

    def test_composed_synthesis_plus_sequencing(self):
        channel = ComposedChannel(
            [IIDChannel.from_total_rate(0.01), IIDChannel.from_total_rate(0.03)]
        )
        result = Pipeline(config(channel=channel)).run(DATA)
        assert result.data == DATA


class TestSwappableCoverage:
    def test_poisson_coverage(self):
        result = Pipeline(config(coverage=PoissonCoverage(10.0))).run(DATA)
        assert result.data == DATA


class TestSwappableClusterer:
    def test_tree_clusterer(self):
        clusterer = TreeClusterer(TreeClusteringConfig())
        result = Pipeline(config(clusterer=clusterer)).run(DATA)
        assert result.data == DATA
        # The tree clusterer never computes edit distances.
        assert result.clustering.edit_comparisons == 0


class TestSwappableReconstructor:
    def test_trellis_reconstructor(self):
        reconstructor = TrellisMAPReconstructor(
            p_ins=0.015, p_del=0.015, p_sub=0.015
        )
        result = Pipeline(config(reconstructor=reconstructor)).run(DATA)
        assert result.data == DATA

    def test_trellis_with_nw_initialisation(self):
        reconstructor = TrellisMAPReconstructor(
            p_ins=0.015,
            p_del=0.015,
            p_sub=0.015,
            initial=NWConsensusReconstructor(),
        )
        result = Pipeline(config(reconstructor=reconstructor)).run(DATA)
        assert result.data == DATA


class TestSwappableLayout:
    def test_gini_layout_through_pipeline(self):
        encoding = EncodingParameters(
            payload_bytes=12,
            data_columns=16,
            parity_columns=8,
            index_bytes=2,
            layout=GiniLayout(),
        )
        result = Pipeline(config(encoding=encoding)).run(DATA)
        assert result.data == DATA


class TestCombinedSwaps:
    def test_everything_nondefault_at_once(self):
        encoding = EncodingParameters(
            payload_bytes=12,
            data_columns=16,
            parity_columns=8,
            index_bytes=2,
            layout=GiniLayout(),
        )
        pipeline = Pipeline(
            config(
                encoding=encoding,
                channel=SOLQCChannel(),
                coverage=PoissonCoverage(10.0),
                clusterer=TreeClusterer(),
                reconstructor=TrellisMAPReconstructor(
                    p_ins=0.01, p_del=0.012, p_sub=0.01
                ),
            )
        )
        result = pipeline.run(DATA)
        assert result.data == DATA
