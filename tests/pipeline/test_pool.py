"""DNA pool / PCR random-access tests."""

import random

import pytest

from repro.codec import DNAEncoder, EncodingParameters, design_primer_library
from repro.pipeline import DNAPool, PCRParameters

LIBRARY = design_primer_library(3, rng=random.Random(21))
FAST = dict(payload_bytes=8, data_columns=6, parity_columns=4, index_bytes=2)


def encode_file(data, pair):
    params = EncodingParameters(primer_pair=pair, **FAST)
    return DNAEncoder(params).encode(data)


class TestStore:
    def test_store_and_keys(self):
        pool = DNAPool()
        encoded = encode_file(b"file a", LIBRARY[0])
        pool.store("a", LIBRARY[0], encoded.strands)
        assert pool.keys == ["a"]
        assert len(pool) == len(encoded.strands)
        assert pool.primer_pair("a") == LIBRARY[0]

    def test_duplicate_key_raises(self):
        pool = DNAPool()
        encoded = encode_file(b"x", LIBRARY[0])
        pool.store("a", LIBRARY[0], encoded.strands)
        with pytest.raises(ValueError):
            pool.store("a", LIBRARY[0], encoded.strands)

    def test_untagged_strands_rejected(self):
        pool = DNAPool()
        with pytest.raises(ValueError):
            pool.store("a", LIBRARY[0], ["ACGTACGT"])

    def test_unknown_key_raises(self):
        with pytest.raises(KeyError):
            DNAPool().primer_pair("missing")


class TestPCRSelect:
    def test_selects_only_matching_file(self, rng):
        pool = DNAPool()
        encoded_a = encode_file(b"file a", LIBRARY[0])
        encoded_b = encode_file(b"file b", LIBRARY[1])
        pool.store("a", LIBRARY[0], encoded_a.strands)
        pool.store("b", LIBRARY[1], encoded_b.strands)

        selected = pool.pcr_select(
            LIBRARY[0], PCRParameters(amplification=1, efficiency=1.0), rng
        )
        assert sorted(selected) == sorted(encoded_a.strands)

    def test_amplification_multiplies_copies(self, rng):
        pool = DNAPool()
        encoded = encode_file(b"amplify", LIBRARY[0])
        pool.store("a", LIBRARY[0], encoded.strands)
        selected = pool.pcr_select(
            LIBRARY[0], PCRParameters(amplification=5, efficiency=1.0), rng
        )
        assert len(selected) == 5 * len(encoded.strands)

    def test_efficiency_drops_molecules(self, rng):
        pool = DNAPool()
        encoded = encode_file(b"dropout" * 20, LIBRARY[0])
        pool.store("a", LIBRARY[0], encoded.strands)
        selected = pool.pcr_select(
            LIBRARY[0], PCRParameters(amplification=1, efficiency=0.5), rng
        )
        assert 0 < len(selected) < len(encoded.strands)

    def test_mismatch_tolerance(self, rng):
        pool = DNAPool()
        encoded = encode_file(b"tolerant", LIBRARY[0])
        # Damage the first two bases of each forward primer site.
        damaged = ["TT" + s[2:] for s in encoded.strands]
        pool._molecules = damaged  # bypass the store() primer check
        pool._keys["a"] = LIBRARY[0]
        strict = pool.pcr_select(
            LIBRARY[0], PCRParameters(max_end_mismatches=0, efficiency=1.0), rng
        )
        loose = pool.pcr_select(
            LIBRARY[0], PCRParameters(max_end_mismatches=3, efficiency=1.0), rng
        )
        assert not strict
        assert len(loose) > 0

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            PCRParameters(max_end_mismatches=-1)
        with pytest.raises(ValueError):
            PCRParameters(amplification=0)
        with pytest.raises(ValueError):
            PCRParameters(efficiency=0.0)


class TestSample:
    def test_sample_fraction(self, rng):
        pool = DNAPool()
        encoded = encode_file(b"sample me" * 30, LIBRARY[0])
        pool.store("a", LIBRARY[0], encoded.strands)
        aliquot = pool.sample(0.5, rng)
        assert 0 < len(aliquot) < len(pool)
        assert aliquot.keys == ["a"]

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            DNAPool().sample(0.0)
