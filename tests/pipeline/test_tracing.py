"""Pipeline-level observability: span coverage and StageTimings rollups."""

import random

import pytest

from repro.clustering import ClusteringConfig, TreeClusterer
from repro.codec import EncodingParameters, design_primer_library
from repro.observability import Tracer
from repro.pipeline import Pipeline, PipelineConfig
from repro.reconstruction import BMAReconstructor
from repro.simulation import ConstantCoverage, IIDChannel

FAST_ENCODING = EncodingParameters(
    payload_bytes=12, data_columns=16, parity_columns=8, index_bytes=2
)
FAST_CLUSTERING = ClusteringConfig(rounds=12, num_grams=48, seed=1)

STAGES = (
    "pipeline.encoding",
    "pipeline.simulation",
    "pipeline.clustering",
    "pipeline.reconstruction",
    "pipeline.decoding",
)


def fast_config(**overrides):
    defaults = dict(
        encoding=FAST_ENCODING,
        channel=IIDChannel.from_total_rate(0.04),
        coverage=ConstantCoverage(8),
        clustering=FAST_CLUSTERING,
        seed=7,
    )
    defaults.update(overrides)
    return PipelineConfig(**defaults)


class TestSpanCoverage:
    def test_all_five_stages_spanned(self):
        tracer = Tracer()
        result = Pipeline(fast_config()).run(b"trace me" * 8, tracer=tracer)
        assert result.success

        assert [root.name for root in tracer.roots] == ["pipeline.run"]
        children = [span.name for span in tracer.roots[0].children]
        stage_names = [name for name in children if name.startswith("pipeline.")]
        assert list(STAGES) == stage_names
        # Quality scoring runs as its own spans, interleaved after the
        # stage each section assesses.
        assert "quality.channel" in children
        assert "quality.clustering" in children
        assert "quality.reconstruction" in children

    def test_stage_internals_nest_under_stages(self):
        tracer = Tracer()
        Pipeline(fast_config()).run(b"nested spans" * 6, tracer=tracer)
        (clustering,) = tracer.find("pipeline.clustering")
        child_names = {span.name for span in clustering.walk()}
        assert "clustering.signatures" in child_names
        assert "clustering.rounds" in child_names
        (decoding,) = tracer.find("pipeline.decoding")
        assert {s.name for s in decoding.children} == {
            "decoding.collect_columns",
            "decoding.units",
        }

    def test_preprocessing_span_only_with_primers(self):
        tracer = Tracer()
        Pipeline(fast_config()).run(b"no primers" * 6, tracer=tracer)
        assert tracer.find("pipeline.preprocessing") == []

        pair = design_primer_library(1, rng=random.Random(5))[0]
        primer_config = fast_config(
            encoding=EncodingParameters(
                payload_bytes=12,
                data_columns=16,
                parity_columns=8,
                index_bytes=2,
                primer_pair=pair,
            ),
            reverse_orientation_prob=0.5,
        )
        tracer = Tracer()
        result = Pipeline(primer_config).run(b"with primers!" * 5, tracer=tracer)
        assert result.data == b"with primers!" * 5
        (span,) = tracer.find("pipeline.preprocessing")
        assert span.attributes["accepted"] > 0
        assert result.timings.preprocessing == pytest.approx(span.duration)
        # Preprocessing is no longer lumped into the simulation bucket.
        (simulation,) = tracer.find("pipeline.simulation")
        assert result.timings.simulation == pytest.approx(simulation.duration)

    def test_run_from_reads_covers_recovery_stages(self):
        pipeline = Pipeline(fast_config())
        full = pipeline.run(b"replay" * 8)
        tracer = Tracer()
        replayed = pipeline.run_from_reads(
            full.sequencing.reads,
            expected_units=full.encoded.num_units,
            tracer=tracer,
        )
        assert replayed.data == b"replay" * 8
        assert [root.name for root in tracer.roots] == ["pipeline.run_from_reads"]
        names = {span.name for span in tracer.walk()}
        assert {
            "pipeline.clustering",
            "pipeline.reconstruction",
            "pipeline.decoding",
        } <= names
        assert "pipeline.simulation" not in names


class TestTimingsRollup:
    def test_timings_match_span_durations(self):
        # Quality assessment runs inside pipeline.run but outside the
        # timed stages; disable it so the root span is directly
        # comparable with the stage sum (the fast kernels made the timed
        # stages cheap enough that the observatory would dominate).
        tracer = Tracer()
        result = Pipeline(fast_config(assess_quality=False)).run(
            b"rollup check" * 6, tracer=tracer
        )
        timings = result.timings
        for stage in STAGES:
            (span,) = tracer.find(stage)
            field = stage.split(".", 1)[1]
            assert getattr(timings, field) == pytest.approx(span.duration)
        (root,) = tracer.find("pipeline.run")
        # The root span covers the stage sum (plus negligible glue code).
        assert root.duration >= timings.total
        assert timings.total == pytest.approx(root.duration, rel=0.25)

    def test_untraced_run_still_populates_timings(self):
        result = Pipeline(fast_config()).run(b"no tracer" * 6)
        timings = result.timings.as_dict()
        for stage in ("encoding", "simulation", "clustering", "reconstruction"):
            assert timings[stage] > 0
        assert timings["total"] == pytest.approx(
            sum(value for key, value in timings.items() if key != "total")
        )

    def test_clustering_result_seconds_match_spans(self):
        tracer = Tracer()
        result = Pipeline(fast_config()).run(b"seconds" * 8, tracer=tracer)
        (signatures,) = tracer.find("clustering.signatures")
        (merge,) = tracer.find("clustering.merge")
        assert result.clustering.signature_seconds == pytest.approx(
            signatures.duration
        )
        assert result.clustering.clustering_seconds == pytest.approx(
            merge.duration
        )


class TestPipelineMetrics:
    def test_counters_populated(self):
        tracer = Tracer()
        result = Pipeline(
            fast_config(reconstructor=BMAReconstructor())
        ).run(b"count me" * 8, tracer=tracer)
        metrics = tracer.metrics
        assert metrics.counter("clusters_formed").value == len(
            result.clustering.clusters
        )
        assert metrics.counter("signature_comparisons").value > 0
        assert metrics.counter("bma_lookahead_invocations").value > 0
        assert (
            metrics.counter(
                "clusters_reconstructed", algorithm="BMAReconstructor"
            ).value
            == len(result.reconstructions)
        )
        assert metrics.histogram("reconstruction_cluster_size").count == len(
            result.reconstructions
        )

    def test_rs_counters_track_report(self):
        tracer = Tracer()
        result = Pipeline(fast_config()).run(b"rs counters" * 6, tracer=tracer)
        report = result.decode_report
        metrics = tracer.metrics
        assert metrics.counter("rs_rows_clean").value == report.clean_rows
        assert metrics.counter("rs_rows_corrected").value == report.corrected_rows
        assert metrics.counter("rs_rows_failed").value == report.failed_rows

    def test_pluggable_clusterer_without_tracer_kw_still_works(self):
        class MinimalClusterer:
            def __init__(self):
                self._inner = TreeClusterer()

            def cluster(self, reads):  # no tracer keyword on purpose
                return self._inner.cluster(reads)

        tracer = Tracer()
        result = Pipeline(
            fast_config(clusterer=MinimalClusterer())
        ).run(b"minimal" * 8, tracer=tracer)
        assert result.data == b"minimal" * 8
        assert tracer.find("pipeline.clustering")
