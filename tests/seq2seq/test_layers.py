"""Tests for neural layers: shapes and gradient flow."""

import numpy as np

from repro.autograd import Tensor
from repro.seq2seq import BahdanauAttention, Dense, Embedding, GRUCell
from repro.seq2seq.layers import Module

RNG = np.random.default_rng(0)


class TestDense:
    def test_shape(self):
        layer = Dense(4, 7, RNG)
        out = layer(Tensor(RNG.normal(size=(3, 4))))
        assert out.shape == (3, 7)

    def test_no_bias(self):
        layer = Dense(4, 7, RNG, bias=False)
        assert layer.bias is None
        zero = layer(Tensor(np.zeros((2, 4))))
        assert np.allclose(zero.data, 0.0)

    def test_parameters_collected(self):
        layer = Dense(4, 7, RNG)
        assert len(layer.parameters()) == 2


class TestEmbedding:
    def test_lookup_shape(self):
        table = Embedding(10, 5, RNG)
        out = table(np.array([[1, 2], [3, 4]]))
        assert out.shape == (2, 2, 5)


class TestGRUCell:
    def test_step_shape(self):
        cell = GRUCell(6, 8, RNG)
        state = cell.initial_state(4)
        new_state = cell(Tensor(RNG.normal(size=(4, 6))), state)
        assert new_state.shape == (4, 8)

    def test_state_bounded_by_tanh_dynamics(self):
        cell = GRUCell(6, 8, RNG)
        state = cell.initial_state(2)
        for _ in range(30):
            state = cell(Tensor(RNG.normal(size=(2, 6))), state)
        assert np.abs(state.data).max() <= 1.0 + 1e-9

    def test_gradients_flow_through_time(self):
        cell = GRUCell(3, 4, RNG)
        inputs = [Tensor(RNG.normal(size=(1, 3))) for _ in range(5)]
        state = cell.initial_state(1)
        for x in inputs:
            state = cell(x, state)
        (state**2).sum().backward()
        assert all(p.grad is not None for p in cell.parameters())

    def test_parameter_count(self):
        cell = GRUCell(3, 4, RNG)
        # 3 input projections (W+b) and 3 hidden projections (no bias).
        expected = 3 * (3 * 4 + 4) + 3 * (4 * 4)
        assert cell.parameter_count() == expected


class TestAttention:
    def test_context_shape_and_weights(self):
        attention = BahdanauAttention(8, 10, 6, RNG)
        annotations = Tensor(RNG.normal(size=(2, 7, 10)))
        projected = attention.project_annotations(annotations)
        context = attention(Tensor(RNG.normal(size=(2, 8))), annotations, projected)
        assert context.shape == (2, 10)

    def test_context_is_convex_combination(self):
        attention = BahdanauAttention(4, 5, 3, RNG)
        # All annotations identical -> the weighted average equals them.
        row = RNG.normal(size=(1, 1, 5))
        annotations = Tensor(np.repeat(row, 6, axis=1))
        projected = attention.project_annotations(annotations)
        context = attention(Tensor(RNG.normal(size=(1, 4))), annotations, projected)
        assert np.allclose(context.data, row[0, 0], atol=1e-9)


class TestModule:
    def test_nested_parameter_collection(self):
        class Stack(Module):
            def __init__(self):
                self.layers = [Dense(2, 2, RNG), Dense(2, 2, RNG)]
                self.head = Dense(2, 1, RNG)

        stack = Stack()
        assert len(stack.parameters()) == 6
