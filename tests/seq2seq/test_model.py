"""Tests for the seq2seq channel model and trainer."""

import random

import numpy as np
import pytest

from repro.dna.alphabet import random_sequence
from repro.seq2seq import Seq2SeqChannelModel, Seq2SeqTrainer, TrainingConfig
from repro.seq2seq.model import pad_targets
from repro.seq2seq.vocab import Vocabulary
from repro.simulation import IIDChannel

TINY = dict(hidden_size=12, embed_dim=6, attention_size=8)


def make_pairs(rng, count=40, length=10, channel=None):
    channel = channel or IIDChannel(p_ins=0.0, p_del=0.0, p_sub=0.1)
    pairs = []
    for _ in range(count):
        clean = random_sequence(length, rng)
        pairs.append((clean, channel.transmit(clean, rng)))
    return pairs


class TestPadTargets:
    def test_padding_and_eos(self):
        vocab = Vocabulary()
        matrix = pad_targets(vocab, ["ACG", "A"])
        assert matrix.shape == (2, 4)
        assert matrix[0, 3] == vocab.EOS
        assert matrix[1, 1] == vocab.EOS
        assert matrix[1, 2] == vocab.PAD


class TestModel:
    def test_encode_shapes(self):
        model = Seq2SeqChannelModel(**TINY)
        tokens = model.vocab.encode("ACGTACGT").reshape(1, -1)
        annotations, state = model.encode(tokens)
        assert annotations.shape == (1, 8, 24)
        assert state.shape == (1, 12)

    def test_loss_is_finite_scalar(self, rng):
        model = Seq2SeqChannelModel(**TINY)
        pairs = make_pairs(rng, count=4)
        clean = np.stack([model.vocab.encode(c) for c, _ in pairs])
        noisy = pad_targets(model.vocab, [n for _, n in pairs])
        loss = model.loss(clean, noisy)
        assert np.isfinite(loss.item())

    def test_transmit_produces_dna(self, rng):
        model = Seq2SeqChannelModel(**TINY)
        read = model.transmit("ACGTACGTAC", rng)
        assert set(read) <= set("ACGT")

    def test_transmit_empty_strand(self, rng):
        assert Seq2SeqChannelModel(**TINY).transmit("", rng) == ""

    def test_transmit_bounded_length(self, rng):
        model = Seq2SeqChannelModel(max_expansion=1.5, **TINY)
        strand = "ACGT" * 5
        for _ in range(5):
            assert len(model.transmit(strand, rng)) <= 30

    def test_untrained_model_is_noisy(self, rng):
        # An untrained model must not accidentally copy its input.
        model = Seq2SeqChannelModel(**TINY)
        strand = random_sequence(12, rng)
        assert any(model.transmit(strand, rng) != strand for _ in range(5))


class TestTrainer:
    def test_loss_decreases(self, rng):
        model = Seq2SeqChannelModel(seed=3, **TINY)
        pairs = make_pairs(rng, count=48, length=8)
        trainer = Seq2SeqTrainer(
            model, TrainingConfig(epochs=4, batch_size=12, learning_rate=5e-3)
        )
        history = trainer.fit(pairs)
        assert history.train_losses[-1] < history.train_losses[0]

    def test_validation_tracked(self, rng):
        model = Seq2SeqChannelModel(seed=3, **TINY)
        pairs = make_pairs(rng, count=24, length=8)
        trainer = Seq2SeqTrainer(model, TrainingConfig(epochs=2, batch_size=8))
        history = trainer.fit(pairs[:16], pairs[16:])
        assert len(history.val_losses) == 2

    def test_empty_pairs_raise(self):
        trainer = Seq2SeqTrainer(Seq2SeqChannelModel(**TINY), TrainingConfig())
        with pytest.raises(ValueError):
            trainer.fit([])

    def test_mixed_lengths_are_bucketed(self, rng):
        model = Seq2SeqChannelModel(seed=3, **TINY)
        pairs = make_pairs(rng, count=10, length=8) + make_pairs(
            rng, count=10, length=12
        )
        trainer = Seq2SeqTrainer(model, TrainingConfig(epochs=1, batch_size=4))
        history = trainer.fit(pairs)
        assert len(history.train_losses) == 1

    def test_evaluate(self, rng):
        model = Seq2SeqChannelModel(seed=3, **TINY)
        pairs = make_pairs(rng, count=12, length=8)
        trainer = Seq2SeqTrainer(model, TrainingConfig(epochs=1))
        trainer.fit(pairs)
        assert np.isfinite(trainer.evaluate(pairs))
