"""Tests for the strand token vocabulary."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.seq2seq import Vocabulary

dna = st.text(alphabet="ACGT", max_size=60)
vocab = Vocabulary()


class TestVocabulary:
    def test_size(self):
        assert len(vocab) == 7

    @given(dna)
    def test_roundtrip(self, strand):
        assert vocab.decode(vocab.encode(strand)) == strand

    @given(dna)
    def test_eos_terminates_decode(self, strand):
        tokens = vocab.encode(strand, add_eos=True)
        extended = np.concatenate([tokens, vocab.encode("ACGT")])
        assert vocab.decode(extended) == strand

    def test_invalid_base_raises(self):
        with pytest.raises(ValueError):
            vocab.encode("ACGU")

    def test_unknown_token_raises(self):
        with pytest.raises(ValueError):
            vocab.decode([99])

    def test_pad_and_sos_skipped(self):
        tokens = [vocab.PAD, vocab.SOS] + list(vocab.encode("AC"))
        assert vocab.decode(tokens) == "AC"

    def test_base_tokens_ordered(self):
        assert vocab.decode(vocab.base_tokens) == "ACGT"
