"""Optimiser behaviour tests."""

import numpy as np
import pytest

from repro.autograd import Adam, SGD, Tensor


def quadratic_loss(x: Tensor) -> Tensor:
    target = Tensor(np.array([1.0, -2.0, 3.0]))
    return ((x - target) ** 2).sum()


class TestSGD:
    def test_minimises_quadratic(self):
        x = Tensor(np.zeros(3), requires_grad=True)
        optimizer = SGD([x], lr=0.1)
        for _ in range(100):
            loss = quadratic_loss(x)
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        assert np.allclose(x.data, [1.0, -2.0, 3.0], atol=1e-3)

    def test_momentum_accelerates(self):
        def run(momentum):
            x = Tensor(np.zeros(3), requires_grad=True)
            optimizer = SGD([x], lr=0.01, momentum=momentum)
            for _ in range(50):
                loss = quadratic_loss(x)
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
            return quadratic_loss(x).item()

        assert run(0.9) < run(0.0)

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            SGD([Tensor(np.zeros(1), requires_grad=True)], lr=0.0)


class TestAdam:
    def test_minimises_quadratic(self):
        x = Tensor(np.zeros(3), requires_grad=True)
        optimizer = Adam([x], lr=0.1)
        for _ in range(200):
            loss = quadratic_loss(x)
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        assert np.allclose(x.data, [1.0, -2.0, 3.0], atol=1e-2)

    def test_no_trainable_parameters_raises(self):
        with pytest.raises(ValueError):
            Adam([Tensor(np.zeros(1))])


class TestClipping:
    def test_clip_scales_down(self):
        x = Tensor(np.zeros(4), requires_grad=True)
        optimizer = SGD([x], lr=0.1)
        (x * 100.0).sum().backward()
        norm = optimizer.clip_gradients(1.0)
        assert norm == pytest.approx(200.0)
        assert np.linalg.norm(x.grad) == pytest.approx(1.0)

    def test_clip_leaves_small_gradients(self):
        x = Tensor(np.zeros(4), requires_grad=True)
        optimizer = SGD([x], lr=0.1)
        (x * 0.01).sum().backward()
        optimizer.clip_gradients(1.0)
        assert np.allclose(x.grad, 0.01)
