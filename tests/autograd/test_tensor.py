"""Numeric gradient checks for the autograd engine."""

import numpy as np
import pytest

from repro.autograd import Tensor, no_grad
from repro.autograd import functional as F

RNG = np.random.default_rng(7)


def numeric_gradient(make_loss, tensor, eps=1e-6):
    gradient = np.zeros_like(tensor.data)
    iterator = np.nditer(tensor.data, flags=["multi_index"])
    while not iterator.finished:
        index = iterator.multi_index
        original = tensor.data[index]
        tensor.data[index] = original + eps
        high = make_loss().item()
        tensor.data[index] = original - eps
        low = make_loss().item()
        tensor.data[index] = original
        gradient[index] = (high - low) / (2 * eps)
        iterator.iternext()
    return gradient


def assert_gradients_match(make_loss, *tensors, tolerance=1e-5):
    for tensor in tensors:
        tensor.zero_grad()
    make_loss().backward()
    for tensor in tensors:
        expected = numeric_gradient(make_loss, tensor)
        actual = tensor.grad if tensor.grad is not None else np.zeros_like(expected)
        assert np.abs(expected - actual).max() < tolerance


@pytest.fixture
def a():
    return Tensor(RNG.normal(size=(3, 4)), requires_grad=True)


@pytest.fixture
def b():
    return Tensor(RNG.normal(size=(4, 5)), requires_grad=True)


class TestArithmeticGradients:
    def test_add_mul_matmul(self, a, b):
        bias = Tensor(RNG.normal(size=(5,)))
        assert_gradients_match(lambda: (((a @ b) + bias) * (a @ b)).sum(), a, b)

    def test_sub_neg(self, a):
        other = Tensor(RNG.normal(size=(3, 4)))
        assert_gradients_match(lambda: ((a - other) * (-a)).sum(), a)

    def test_div(self, a):
        denominator = Tensor(2.0 + np.abs(RNG.normal(size=(4,))))
        assert_gradients_match(lambda: (a / denominator).sum(), a)

    def test_pow(self, a):
        weights = Tensor(RNG.normal(size=(3, 4)))
        assert_gradients_match(lambda: ((a**3) * weights).sum(), a)

    def test_broadcasting_bias(self):
        bias = Tensor(RNG.normal(size=(4,)), requires_grad=True)
        x = Tensor(RNG.normal(size=(3, 4)))
        assert_gradients_match(lambda: ((x + bias) ** 2).sum(), bias)


class TestNonlinearityGradients:
    def test_sigmoid_tanh(self, a, b):
        assert_gradients_match(
            lambda: (F.sigmoid(a @ b) * F.tanh(a @ b)).sum(), a, b
        )

    def test_relu(self, a):
        assert_gradients_match(lambda: (F.relu(a) ** 2).sum(), a)

    def test_exp_log(self, a):
        assert_gradients_match(lambda: F.log(F.exp(a) + 1.0).sum(), a)

    def test_softmax(self, a):
        weights = Tensor(RNG.normal(size=(3, 4)))
        assert_gradients_match(lambda: (F.softmax(a) * weights).sum(), a)


class TestShapeOpGradients:
    def test_reshape_transpose_mean(self, a):
        assert_gradients_match(lambda: (a.reshape(4, 3).transpose() ** 2).mean(), a)

    def test_concat(self):
        x = Tensor(RNG.normal(size=(2, 3)), requires_grad=True)
        y = Tensor(RNG.normal(size=(2, 2)), requires_grad=True)
        assert_gradients_match(lambda: (F.concat([x, y], axis=1) ** 2).sum(), x, y)

    def test_stack_and_slice(self):
        x = Tensor(RNG.normal(size=(4, 3)), requires_grad=True)
        assert_gradients_match(
            lambda: (F.stack([x[0], x[2]], axis=0) ** 2).sum(), x
        )

    def test_sum_axis_keepdims(self, a):
        assert_gradients_match(lambda: (a.sum(axis=1, keepdims=True) ** 2).sum(), a)


class TestSpecializedGradients:
    def test_embedding(self):
        table = Tensor(RNG.normal(size=(6, 4)), requires_grad=True)
        indices = np.array([1, 3, 5, 1])  # repeated index accumulates
        weights = Tensor(RNG.normal(size=(4, 4)))
        assert_gradients_match(
            lambda: (F.embedding(table, indices) * weights).sum(), table
        )

    def test_cross_entropy(self):
        logits = Tensor(RNG.normal(size=(7, 5)), requires_grad=True)
        targets = RNG.integers(0, 5, size=7)
        assert_gradients_match(
            lambda: F.cross_entropy_logits(logits, targets), logits
        )

    def test_cross_entropy_requires_2d(self):
        with pytest.raises(ValueError):
            F.cross_entropy_logits(Tensor(np.zeros(3), requires_grad=True), [0])


class TestEngineSemantics:
    def test_no_grad_blocks_graph(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            y = (x * 2).sum()
        assert not y.requires_grad

    def test_backward_on_no_grad_tensor_raises(self):
        with pytest.raises(RuntimeError):
            Tensor(np.ones(2)).backward()

    def test_gradient_accumulates_across_backwards(self):
        x = Tensor(np.ones(3), requires_grad=True)
        (x * 2).sum().backward()
        (x * 2).sum().backward()
        assert np.allclose(x.grad, 4.0)

    def test_zero_grad(self):
        x = Tensor(np.ones(3), requires_grad=True)
        (x * 2).sum().backward()
        x.zero_grad()
        assert x.grad is None

    def test_diamond_graph_gradient(self):
        # y = x*x used twice downstream: gradients must sum over both paths.
        x = Tensor(np.array([3.0]), requires_grad=True)
        y = x * x
        z = (y + y).sum()
        z.backward()
        assert np.allclose(x.grad, 12.0)

    def test_tensor_exponent_rejected(self):
        x = Tensor(np.ones(2), requires_grad=True)
        with pytest.raises(TypeError):
            x ** Tensor(np.ones(2))
