"""Matrix consensus kernels vs the scalar reconstructor oracles."""

import random
from collections import Counter

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dna.alphabet import BASES
from repro.dna.readpool import ReadPool
from repro.reconstruction import (
    BMAReconstructor,
    DoubleSidedBMAReconstructor,
    MajorityVoteReconstructor,
)
from repro.reconstruction.matrix import (
    bma_consensus_batch,
    majority_consensus_batch,
    reverse_matrix,
    stack_clusters,
)

clusters_strategy = st.lists(
    st.lists(st.text(alphabet="ACGT", max_size=30), min_size=1, max_size=6).filter(
        lambda cluster: any(cluster)
    ),
    min_size=1,
    max_size=6,
)


def _noisy_clusters(rng, count=8, reads_per=5, length=40, edits=4):
    clusters = []
    for _ in range(count):
        reference = "".join(rng.choice(BASES) for _ in range(length))
        cluster = []
        for _ in range(reads_per):
            sequence = list(reference)
            for _ in range(rng.randrange(edits + 1)):
                kind = rng.choice(("sub", "ins", "del"))
                if kind == "del" and sequence:
                    del sequence[rng.randrange(len(sequence))]
                elif kind == "ins":
                    sequence.insert(
                        rng.randrange(len(sequence) + 1), rng.choice(BASES)
                    )
                elif sequence:
                    sequence[rng.randrange(len(sequence))] = rng.choice(BASES)
            cluster.append("".join(sequence))
        clusters.append(cluster)
    return clusters


class TestMajorityTieBreakOracle:
    """Satellite: pin the scalar tie-break before trusting the matrix kernel.

    The scalar ``MajorityVoteReconstructor`` resolves tied column counts by
    picking the lexicographically smallest base (``sorted(...)[0]``) and
    votes ``A`` on columns past every read.  These properties are the
    contract the batched ``argmax``-first-maximum kernel must reproduce.
    """

    @given(cluster=clusters_strategy.map(lambda cs: cs[0]))
    def test_scalar_picks_smallest_tied_base(self, cluster):
        expected_length = max(len(read) for read in cluster)
        result = MajorityVoteReconstructor().reconstruct(cluster, expected_length)
        for position, base in enumerate(result):
            votes = Counter(
                read[position] for read in cluster if position < len(read)
            )
            if not votes:
                assert base == "A"
                continue
            top = max(votes.values())
            assert votes[base] == top
            # No strictly smaller base ties the winning count.
            assert all(
                votes[other] < top for other in BASES if other < base
            )

    def test_explicit_ties(self):
        # C vs G tie -> C; A vs T tie -> A; exhausted tail -> A.
        assert MajorityVoteReconstructor().reconstruct(["CG", "GC"], 4) == "CCAA"
        assert MajorityVoteReconstructor().reconstruct(["AT", "TA"], 2) == "AA"

    @given(clusters=clusters_strategy, expected_length=st.integers(0, 35))
    def test_batch_matches_scalar(self, clusters, expected_length):
        scalar = MajorityVoteReconstructor()
        expected = [scalar.reconstruct(c, expected_length) for c in clusters]
        batched = MajorityVoteReconstructor().reconstruct_batch(
            clusters, expected_length
        )
        assert batched == expected


class TestStackClusters:
    def test_rejects_all_empty_cluster(self):
        with pytest.raises(ValueError):
            stack_clusters([["AC"], ["", ""]])
        with pytest.raises(ValueError):
            MajorityVoteReconstructor().reconstruct_batch([["AC"], [""]], 4)

    def test_non_acgt_returns_none(self):
        assert stack_clusters([["ACGT"], ["ACNT"]]) is None

    def test_non_acgt_falls_back_to_scalar_loop(self):
        # "N" columns are off the matrix path but the scalar loop handles
        # them; batch and loop must still agree.
        clusters = [["NNAC", "NNAC"], ["GGGG"]]
        scalar = MajorityVoteReconstructor()
        assert scalar.reconstruct_batch(clusters, 4) == [
            scalar.reconstruct(c, 4) for c in clusters
        ]

    def test_views_stack_like_strings(self, rng):
        clusters = _noisy_clusters(rng)
        flat = [read for cluster in clusters for read in cluster]
        pool = ReadPool.from_strings(flat)
        views = []
        cursor = 0
        for cluster in clusters:
            views.append(pool.view(range(cursor, cursor + len(cluster))))
            cursor += len(cluster)
        from_views = stack_clusters(views)
        from_strings = stack_clusters(clusters)
        for left, right in zip(from_views, from_strings):
            assert np.array_equal(left, right)

    def test_reverse_matrix(self):
        matrix, lengths, _ = stack_clusters([["ACGT", "GG", ""]])
        reversed_matrix = reverse_matrix(matrix, lengths)
        restored = reverse_matrix(reversed_matrix, lengths)
        assert np.array_equal(restored, matrix)
        assert reversed_matrix[0].tolist() == [3, 2, 1, 0]
        assert reversed_matrix[1, :2].tolist() == [2, 2]


class TestBMABatchOracle:
    @pytest.mark.parametrize("lookahead", [1, 2, 3, 5])
    def test_matches_scalar_including_counter(self, rng, lookahead):
        clusters = _noisy_clusters(rng, count=10, reads_per=6, length=50)
        expected_length = 50
        scalar = BMAReconstructor(lookahead=lookahead)
        expected = [scalar.reconstruct(c, expected_length) for c in clusters]
        batched_rec = BMAReconstructor(lookahead=lookahead)
        batched = batched_rec.reconstruct_batch(clusters, expected_length)
        assert batched == expected
        assert batched_rec.drain_counters() == scalar.drain_counters()

    def test_exhausted_clusters_use_seeded_filler(self):
        scalar = BMAReconstructor()
        batched = BMAReconstructor()
        clusters = [["ACG", "ACG"], ["TT"]]
        assert batched.reconstruct_batch(clusters, 12) == [
            scalar.reconstruct(c, 12) for c in clusters
        ]

    @given(clusters=clusters_strategy, expected_length=st.integers(0, 35))
    def test_property_matches_scalar(self, clusters, expected_length):
        scalar = BMAReconstructor(lookahead=2)
        expected = [scalar.reconstruct(c, expected_length) for c in clusters]
        batched = BMAReconstructor(lookahead=2)
        assert batched.reconstruct_batch(clusters, expected_length) == expected

    def test_direct_kernel_matches_scalar(self, rng):
        clusters = _noisy_clusters(rng, count=4, reads_per=4, length=30)
        matrix, lengths, starts = stack_clusters(clusters)
        strings, invocations = bma_consensus_batch(matrix, lengths, starts, 30, 2)
        scalar = BMAReconstructor(lookahead=2)
        assert strings == [scalar.reconstruct(c, 30) for c in clusters]
        assert invocations == scalar.drain_counters()["bma_lookahead_invocations"]


class TestDoubleBMABatch:
    def test_matches_scalar(self, rng):
        clusters = _noisy_clusters(rng, count=8, reads_per=5, length=44)
        expected_length = 44
        scalar = DoubleSidedBMAReconstructor(lookahead=2)
        expected = [scalar.reconstruct(c, expected_length) for c in clusters]
        batched = DoubleSidedBMAReconstructor(lookahead=2)
        assert batched.reconstruct_batch(clusters, expected_length) == expected
        assert batched.drain_counters() == scalar.drain_counters()

    def test_odd_expected_length(self, rng):
        clusters = _noisy_clusters(rng, count=3, reads_per=4, length=21)
        scalar = DoubleSidedBMAReconstructor()
        batched = DoubleSidedBMAReconstructor()
        assert batched.reconstruct_batch(clusters, 21) == [
            scalar.reconstruct(c, 21) for c in clusters
        ]


class TestThroughReconstructAll:
    def test_reconstruct_all_uses_batch_and_matches(self, rng):
        clusters = _noisy_clusters(rng, count=12, reads_per=5, length=40)
        for maker in (
            MajorityVoteReconstructor,
            lambda: BMAReconstructor(lookahead=2),
        ):
            serial = maker()
            expected = [serial.reconstruct(c, 40) for c in clusters]
            assert maker().reconstruct_all(clusters, 40) == expected
