"""Tests for the windowed, banded, batched POA reconstructor."""

import numpy as np
import pytest

from repro.dna.alphabet import random_sequence
from repro.dna.distance import levenshtein_distance
from repro.dna.readpool import ReadPool
from repro.parallel import WorkerPool
from repro.reconstruction import NWConsensusReconstructor, WindowedPOAReconstructor
from repro.simulation import IIDChannel


def noisy_cluster(length, reads, rng, rate=0.03):
    channel = IIDChannel.from_total_rate(rate)
    reference = random_sequence(length, rng)
    return reference, [channel.transmit(reference, rng) for _ in range(reads)]


class TestValidation:
    def test_invalid_window_raises(self):
        with pytest.raises(ValueError):
            WindowedPOAReconstructor(window=0)

    def test_overlap_must_be_inside_window(self):
        with pytest.raises(ValueError):
            WindowedPOAReconstructor(window=100, window_overlap=100)
        with pytest.raises(ValueError):
            WindowedPOAReconstructor(window=100, window_overlap=0)

    def test_invalid_window_band_raises(self):
        with pytest.raises(ValueError):
            WindowedPOAReconstructor(window_band=0)

    def test_invalid_max_window_reads_raises(self):
        with pytest.raises(ValueError):
            WindowedPOAReconstructor(max_window_reads=0)

    def test_empty_cluster_raises(self):
        with pytest.raises(ValueError):
            WindowedPOAReconstructor().reconstruct([], 100)

    def test_all_empty_reads_raise(self):
        with pytest.raises(ValueError):
            WindowedPOAReconstructor().reconstruct(["", ""], 100)


class TestShortDelegation:
    def test_byte_identical_to_scalar_on_short_strands(self, rng):
        for length in (60, 132, 180):
            _, cluster = noisy_cluster(length, 8, rng)
            scalar = NWConsensusReconstructor(max_cluster=64)
            windowed = WindowedPOAReconstructor()
            assert windowed.reconstruct(cluster, length) == scalar.reconstruct(
                cluster, length
            )

    def test_short_delegation_counted(self, rng):
        _, cluster = noisy_cluster(100, 4, rng)
        reconstructor = WindowedPOAReconstructor()
        reconstructor.reconstruct(cluster, 100)
        counts = reconstructor.drain_counters()
        assert counts["nww_short_delegated"] == 1
        assert counts["nww_windows_planned"] == 0


class TestLongStrands:
    def test_recovers_kb_scale_reference(self, rng):
        reference, cluster = noisy_cluster(1000, 8, rng)
        consensus = WindowedPOAReconstructor().reconstruct(cluster, 1000)
        assert len(consensus) == 1000
        assert levenshtein_distance(consensus, reference) <= 10

    def test_windows_planned_counted(self, rng):
        _, cluster = noisy_cluster(600, 6, rng)
        reconstructor = WindowedPOAReconstructor()
        reconstructor.reconstruct(cluster, 600)
        counts = reconstructor.drain_counters()
        assert counts["nww_windows_planned"] >= 3
        assert counts["nww_short_delegated"] == 0

    def test_output_length_is_exact_under_heavy_noise(self, rng):
        _, cluster = noisy_cluster(800, 6, rng, rate=0.09)
        consensus = WindowedPOAReconstructor().reconstruct(cluster, 800)
        assert len(consensus) == 800

    def test_deletion_heavy_cluster_recovers(self, rng):
        # Deletions are restored through insertion-run voting; global
        # (not per-window) over-length trimming is what keeps the
        # restored columns — pin that behaviour end to end.
        channel = IIDChannel(p_ins=0.0, p_del=0.02, p_sub=0.0)
        reference = random_sequence(900, rng)
        cluster = [channel.transmit(reference, rng) for _ in range(8)]
        consensus = WindowedPOAReconstructor().reconstruct(cluster, 900)
        assert levenshtein_distance(consensus, reference) <= 8

    def test_subsampling_bounds_window_reads(self, rng):
        _, cluster = noisy_cluster(600, 12, rng)
        reconstructor = WindowedPOAReconstructor(max_window_reads=4)
        reconstructor.reconstruct(cluster, 600)
        counts = reconstructor.drain_counters()
        assert counts["nww_reads_subsampled"] > 0


class TestDeterminism:
    def test_worker_count_invariance(self, rng):
        clusters = []
        length = 700
        for _ in range(3):
            _, cluster = noisy_cluster(length, 6, rng)
            clusters.append(cluster)
        serial = WindowedPOAReconstructor().reconstruct_all(clusters, length)
        with WorkerPool(2) as pool:
            fanned = WindowedPOAReconstructor().reconstruct_all(
                clusters, length, pool=pool
            )
        assert fanned == serial

    def test_repeated_runs_are_identical(self, rng):
        _, cluster = noisy_cluster(800, 8, rng)
        first = WindowedPOAReconstructor().reconstruct(cluster, 800)
        second = WindowedPOAReconstructor().reconstruct(cluster, 800)
        assert first == second

    def test_readpool_view_matches_string_clusters(self, rng):
        clusters = []
        length = 700
        for _ in range(3):
            _, cluster = noisy_cluster(length, 6, rng)
            clusters.append(cluster)
        from_strings = WindowedPOAReconstructor().reconstruct_all(clusters, length)
        pool = ReadPool.from_strings([read for cluster in clusters for read in cluster])
        views = []
        cursor = 0
        for cluster in clusters:
            views.append(
                pool.view(np.arange(cursor, cursor + len(cluster), dtype=np.int64))
            )
            cursor += len(cluster)
        from_views = WindowedPOAReconstructor().reconstruct_all(views, length)
        assert from_views == from_strings


class TestCounters:
    def test_counters_drain_to_zero(self, rng):
        _, cluster = noisy_cluster(600, 6, rng)
        reconstructor = WindowedPOAReconstructor()
        reconstructor.reconstruct(cluster, 600)
        reconstructor.drain_counters()
        drained = reconstructor.drain_counters()
        assert all(value == 0 for value in drained.values())

    def test_counter_names_cover_scalar_and_windowed(self):
        names = set(WindowedPOAReconstructor().drain_counters())
        assert {
            "nw_reads_folded",
            "nw_reads_capped",
            "nw_band_saturations",
            "nww_windows_planned",
            "nww_short_delegated",
            "nww_window_reads_dropped",
            "nww_merge_fallbacks",
            "nww_reads_subsampled",
        } <= names
