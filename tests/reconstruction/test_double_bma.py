"""Tests for double-sided BMA."""

import numpy as np
import pytest

from repro.analysis import per_index_error_profile
from repro.dna.alphabet import random_sequence
from repro.reconstruction import BMAReconstructor, DoubleSidedBMAReconstructor
from repro.simulation import IIDChannel


class TestBasics:
    def test_clean_cluster(self):
        reads = ["ACGTACGTAC"] * 5
        assert DoubleSidedBMAReconstructor().reconstruct(reads, 10) == "ACGTACGTAC"

    def test_odd_expected_length(self):
        reads = ["ACGTACGTA"] * 4
        assert DoubleSidedBMAReconstructor().reconstruct(reads, 9) == "ACGTACGTA"

    def test_length_one(self):
        assert DoubleSidedBMAReconstructor().reconstruct(["A", "A"], 1) == "A"

    def test_empty_cluster_raises(self):
        with pytest.raises(ValueError):
            DoubleSidedBMAReconstructor().reconstruct([], 5)

    def test_output_length(self, rng):
        channel = IIDChannel.from_total_rate(0.09)
        reference = random_sequence(77, rng)
        reads = [channel.transmit(reference, rng) for _ in range(8)]
        assert len(DoubleSidedBMAReconstructor().reconstruct(reads, 77)) == 77


class TestErrorConcentration:
    def test_middle_peak(self, rng):
        """Errors concentrate in the middle indexes (paper Figure 6)."""
        channel = IIDChannel.from_total_rate(0.09)
        references = [random_sequence(100, rng) for _ in range(80)]
        clusters = [
            [channel.transmit(reference, rng) for _ in range(8)]
            for reference in references
        ]
        reconstructor = DoubleSidedBMAReconstructor()
        outputs = [reconstructor.reconstruct(c, 100) for c in clusters]
        profile = per_index_error_profile(references, outputs)
        edges = float(np.mean(np.concatenate([profile.rates[:20], profile.rates[80:]])))
        middle = float(np.mean(profile.rates[40:60]))
        assert middle > edges

    def test_more_perfect_strands_than_single_sided(self, rng):
        channel = IIDChannel.from_total_rate(0.09)
        references = [random_sequence(100, rng) for _ in range(60)]
        clusters = [
            [channel.transmit(reference, rng) for _ in range(8)]
            for reference in references
        ]
        single = BMAReconstructor()
        double = DoubleSidedBMAReconstructor()
        single_profile = per_index_error_profile(
            references, [single.reconstruct(c, 100) for c in clusters]
        )
        double_profile = per_index_error_profile(
            references, [double.reconstruct(c, 100) for c in clusters]
        )
        assert double_profile.perfect >= single_profile.perfect
