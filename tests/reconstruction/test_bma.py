"""Tests for BMA-lookahead reconstruction."""

import random

import numpy as np
import pytest

from repro.analysis import per_index_error_profile
from repro.dna.alphabet import random_sequence
from repro.reconstruction import BMAReconstructor
from repro.simulation import IIDChannel


class TestBasics:
    def test_clean_cluster(self):
        reads = ["ACGTACGTAC"] * 5
        assert BMAReconstructor().reconstruct(reads, 10) == "ACGTACGTAC"

    def test_empty_cluster_raises(self):
        with pytest.raises(ValueError):
            BMAReconstructor().reconstruct([], 10)

    def test_invalid_lookahead(self):
        with pytest.raises(ValueError):
            BMAReconstructor(lookahead=0)

    def test_output_length_matches_expected(self, rng):
        channel = IIDChannel.from_total_rate(0.09)
        reference = random_sequence(60, rng)
        reads = [channel.transmit(reference, rng) for _ in range(8)]
        assert len(BMAReconstructor().reconstruct(reads, 60)) == 60

    def test_exhausted_reads_are_padded(self):
        # All reads much shorter than expected: the tail must still appear.
        result = BMAReconstructor().reconstruct(["ACG", "ACG"], 10)
        assert len(result) == 10
        assert result.startswith("ACG")


class TestErrorHandling:
    def test_outvotes_substitution(self):
        reads = ["ACGTACGT", "ACGAACGT", "ACGTACGT"]
        assert BMAReconstructor().reconstruct(reads, 8) == "ACGTACGT"

    def test_realigns_after_deletion(self):
        reference = "ACGTACGTTGCA"
        deleted = reference[:4] + reference[5:]  # deletion at index 4
        reads = [reference, deleted, reference]
        assert BMAReconstructor().reconstruct(reads, 12) == reference

    def test_realigns_after_insertion(self):
        reference = "ACGTACGTTGCA"
        inserted = reference[:4] + "T" + reference[4:]
        reads = [reference, inserted, reference]
        assert BMAReconstructor().reconstruct(reads, 12) == reference

    def test_recovers_noisy_cluster(self, rng):
        channel = IIDChannel.from_total_rate(0.06)
        reference = random_sequence(100, rng)
        reads = [channel.transmit(reference, rng) for _ in range(10)]
        result = BMAReconstructor().reconstruct(reads, 100)
        mismatches = sum(1 for a, b in zip(result, reference) if a != b)
        assert mismatches <= 10


class TestErrorPropagation:
    def test_late_indexes_less_reliable(self, rng):
        """The defining property of single-sided BMA (paper Figure 6)."""
        channel = IIDChannel.from_total_rate(0.09)
        references = [random_sequence(100, rng) for _ in range(60)]
        clusters = [
            [channel.transmit(reference, rng) for _ in range(8)]
            for reference in references
        ]
        reconstructor = BMAReconstructor()
        outputs = [reconstructor.reconstruct(c, 100) for c in clusters]
        profile = per_index_error_profile(references, outputs)
        early = float(np.mean(profile.rates[:30]))
        late = float(np.mean(profile.rates[70:]))
        assert late > early
