"""Tests for the trellis symbolwise-MAP reconstructor."""

import numpy as np
import pytest

from repro.analysis import per_index_error_profile
from repro.dna.alphabet import random_sequence
from repro.reconstruction import (
    DoubleSidedBMAReconstructor,
    NWConsensusReconstructor,
    TrellisMAPReconstructor,
)
from repro.simulation import IIDChannel


class TestValidation:
    def test_rate_validation(self):
        with pytest.raises(ValueError):
            TrellisMAPReconstructor(p_ins=0.5, p_del=0.4, p_sub=0.2)
        with pytest.raises(ValueError):
            TrellisMAPReconstructor(p_ins=-0.1)

    def test_sweeps_validation(self):
        with pytest.raises(ValueError):
            TrellisMAPReconstructor(sweeps=0)

    def test_empty_cluster_raises(self):
        with pytest.raises(ValueError):
            TrellisMAPReconstructor().reconstruct([], 10)


class TestBasics:
    def test_clean_cluster(self):
        reads = ["ACGTACGTAC"] * 4
        assert TrellisMAPReconstructor().reconstruct(reads, 10) == "ACGTACGTAC"

    def test_output_length(self, rng):
        channel = IIDChannel.from_total_rate(0.06)
        reference = random_sequence(70, rng)
        reads = [channel.transmit(reference, rng) for _ in range(6)]
        assert len(TrellisMAPReconstructor().reconstruct(reads, 70)) == 70

    def test_outvotes_substitutions(self):
        reads = ["ACGTACGT", "ACGAACGT", "ACGTACGT", "ACGTACGA"]
        assert TrellisMAPReconstructor().reconstruct(reads, 8) == "ACGTACGT"


class TestPosteriorMath:
    def test_posterior_rows_normalised(self, rng):
        reconstructor = TrellisMAPReconstructor()
        estimate = random_sequence(30, rng)
        read = reconstructor._encode(
            IIDChannel.from_total_rate(0.06).transmit(estimate, rng)
        )
        posterior = reconstructor._read_posterior(estimate, read)
        assert posterior.shape == (30, 4)
        assert np.allclose(posterior.sum(axis=1), 1.0)

    def test_posterior_prefers_observed_base(self, rng):
        reconstructor = TrellisMAPReconstructor()
        estimate = "ACGT" * 8
        read = reconstructor._encode(estimate)
        posterior = reconstructor._read_posterior(estimate, read)
        decided = posterior.argmax(axis=1)
        assert "".join("ACGT"[b] for b in decided) == estimate


class TestRefinementQuality:
    def test_no_worse_than_initialisation(self, rng):
        channel = IIDChannel.from_total_rate(0.09)
        references = [random_sequence(80, rng) for _ in range(30)]
        clusters = [
            [channel.transmit(reference, rng) for _ in range(8)]
            for reference in references
        ]
        initial = DoubleSidedBMAReconstructor()
        trellis = TrellisMAPReconstructor(p_ins=0.03, p_del=0.03, p_sub=0.03)
        base_profile = per_index_error_profile(
            references, [initial.reconstruct(c, 80) for c in clusters]
        )
        refined_profile = per_index_error_profile(
            references, [trellis.reconstruct(c, 80) for c in clusters]
        )
        assert refined_profile.mean_rate <= base_profile.mean_rate + 0.005

    def test_nw_initialisation_improves_perfect_count(self, rng):
        channel = IIDChannel(p_ins=0.02, p_del=0.02, p_sub=0.05)
        references = [random_sequence(80, rng) for _ in range(25)]
        clusters = [
            [channel.transmit(reference, rng) for _ in range(6)]
            for reference in references
        ]
        nw = NWConsensusReconstructor()
        refined = TrellisMAPReconstructor(
            p_ins=0.02, p_del=0.02, p_sub=0.05, initial=NWConsensusReconstructor()
        )
        nw_profile = per_index_error_profile(
            references, [nw.reconstruct(c, 80) for c in clusters]
        )
        refined_profile = per_index_error_profile(
            references, [refined.reconstruct(c, 80) for c in clusters]
        )
        assert refined_profile.perfect >= nw_profile.perfect
