"""Tests for the Needleman-Wunsch / POA consensus reconstructor."""

import pytest

from repro.analysis import per_index_error_profile
from repro.dna.alphabet import random_sequence
from repro.dna.distance import levenshtein_distance
from repro.reconstruction import (
    MajorityVoteReconstructor,
    NWConsensusReconstructor,
)
from repro.simulation import IIDChannel, WetlabReferenceChannel


class TestBasics:
    def test_clean_cluster(self):
        reads = ["ACGTACGTAC"] * 4
        assert NWConsensusReconstructor().reconstruct(reads, 10) == "ACGTACGTAC"

    def test_empty_cluster_raises(self):
        with pytest.raises(ValueError):
            NWConsensusReconstructor().reconstruct([], 5)

    def test_invalid_max_cluster(self):
        with pytest.raises(ValueError):
            NWConsensusReconstructor(max_cluster=0)

    def test_output_length_is_exact(self, rng):
        channel = WetlabReferenceChannel()
        reference = random_sequence(90, rng)
        reads = [channel.transmit(reference, rng) for _ in range(10)]
        assert len(NWConsensusReconstructor().reconstruct(reads, 90)) == 90

    def test_max_cluster_caps_reads(self, rng):
        channel = IIDChannel.from_total_rate(0.06)
        reference = random_sequence(50, rng)
        reads = [channel.transmit(reference, rng) for _ in range(40)]
        result = NWConsensusReconstructor(max_cluster=8).reconstruct(reads, 50)
        assert len(result) == 50


class TestReadSelection:
    """Pin the deterministic backbone choice and the post-sort cap."""

    def test_closest_to_median_leads(self):
        # lengths 4, 6, 5: median 5, so read 2 becomes the backbone.
        assert NWConsensusReconstructor()._selection_order([4, 6, 5]) == [2, 0, 1]

    def test_median_distance_tie_prefers_shorter(self):
        # 4 and 6 are both one off the median; the shorter read wins.
        order = NWConsensusReconstructor()._selection_order([6, 4, 5])
        assert order == [2, 1, 0]

    def test_length_tie_prefers_arrival_order(self):
        assert NWConsensusReconstructor()._selection_order([5, 5, 5]) == [0, 1, 2]

    def test_cap_applies_after_median_sort(self):
        # sorted lengths [5, 5, 9, 10] put the median at 9, so the reads
        # kept under a cap of 2 are the ones *closest to 9* — not the
        # first two by arrival.
        order = NWConsensusReconstructor(max_cluster=2)._selection_order(
            [10, 5, 5, 9]
        )
        assert order == [3, 0]

    def test_capped_counter_counts_dropped_reads(self):
        reconstructor = NWConsensusReconstructor(max_cluster=2)
        reconstructor.reconstruct(["ACGTA"] * 5, 5)
        counts = reconstructor.drain_counters()
        assert counts["nw_reads_capped"] == 3
        assert counts["nw_reads_folded"] == 2

    def test_band_saturation_counter_drains(self):
        reconstructor = NWConsensusReconstructor()
        reconstructor.reconstruct(["ACGTACGT"] * 3, 8)
        counts = reconstructor.drain_counters()
        assert counts["nw_band_saturations"] == 0


class TestQuality:
    def test_beats_naive_majority_on_indels(self, rng):
        channel = IIDChannel(p_ins=0.03, p_del=0.03, p_sub=0.0)
        references = [random_sequence(80, rng) for _ in range(30)]
        clusters = [
            [channel.transmit(reference, rng) for _ in range(10)]
            for reference in references
        ]
        nw = NWConsensusReconstructor()
        naive = MajorityVoteReconstructor()
        nw_profile = per_index_error_profile(
            references, [nw.reconstruct(c, 80) for c in clusters]
        )
        naive_profile = per_index_error_profile(
            references, [naive.reconstruct(c, 80) for c in clusters]
        )
        assert nw_profile.mean_rate < naive_profile.mean_rate / 2

    def test_two_pass_improves_perfect_count(self, rng):
        channel = WetlabReferenceChannel()
        references = [random_sequence(90, rng) for _ in range(30)]
        clusters = [
            [channel.transmit(reference, rng) for _ in range(10)]
            for reference in references
        ]
        one_pass = NWConsensusReconstructor(two_pass=False)
        two_pass = NWConsensusReconstructor(two_pass=True)
        one = per_index_error_profile(
            references, [one_pass.reconstruct(c, 90) for c in clusters]
        )
        two = per_index_error_profile(
            references, [two_pass.reconstruct(c, 90) for c in clusters]
        )
        assert two.perfect >= one.perfect

    def test_recovers_bursty_channel(self, rng):
        channel = WetlabReferenceChannel()
        reference = random_sequence(100, rng)
        reads = [channel.transmit(reference, rng) for _ in range(12)]
        consensus = NWConsensusReconstructor().reconstruct(reads, 100)
        assert levenshtein_distance(consensus, reference) <= 5


class TestMajorityVote:
    def test_exact_on_substitution_only(self, rng):
        channel = IIDChannel(p_ins=0.0, p_del=0.0, p_sub=0.1)
        reference = random_sequence(60, rng)
        reads = [channel.transmit(reference, rng) for _ in range(15)]
        assert MajorityVoteReconstructor().reconstruct(reads, 60) == reference

    def test_pads_missing_positions(self):
        assert MajorityVoteReconstructor().reconstruct(["AC"], 4) == "ACAA"
