"""Ablation: automatic vs fixed clustering thresholds.

The automatic configuration (Section VI-B) should match a well-tuned fixed
threshold pair on accuracy while avoiding the failure modes of badly-tuned
ones: too-tight thresholds shatter clusters, too-loose ones either merge
unrelated reads or burn edit-distance calls on hopeless pairs.
"""

from __future__ import annotations

import random

from benchmarks.conftest import write_report
from repro.analysis import format_table
from repro.clustering import (
    ClusteringConfig,
    RashtchianClusterer,
    clustering_accuracy,
)
from repro.dna.alphabet import random_sequence
from repro.simulation import ConstantCoverage, IIDChannel, sequence_pool

LENGTH = 116
CLUSTERS = 120
ERROR_RATE = 0.06


def run_ablation():
    rng = random.Random(0xAB7)
    references = [random_sequence(LENGTH, rng) for _ in range(CLUSTERS)]
    run = sequence_pool(
        references,
        IIDChannel.from_total_rate(ERROR_RATE),
        ConstantCoverage(10),
        rng,
    )
    truth = list(run.true_clusters().values())

    variants = {
        "auto": {},
        "tight (2, 4)": {"theta_low": 2.0, "theta_high": 4.0},
        "loose (30, 46)": {"theta_low": 30.0, "theta_high": 46.0},
        "wide gray (2, 46)": {"theta_low": 2.0, "theta_high": 46.0},
    }
    outcomes = {}
    for name, overrides in variants.items():
        config = ClusteringConfig(seed=3, **overrides)
        result = RashtchianClusterer(config).cluster(run.reads)
        outcomes[name] = (
            clustering_accuracy(result.clusters, truth),
            result.edit_comparisons,
            result.total_seconds,
            len(result.clusters),
        )
    return outcomes


def test_ablation_thresholds(benchmark):
    outcomes = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    rows = [
        [name, f"{acc:.4f}", str(edits), f"{seconds:.1f}", str(count)]
        for name, (acc, edits, seconds, count) in outcomes.items()
    ]
    headers = ["thresholds", "accuracy", "edit comparisons", "seconds", "clusters"]
    table = format_table(
        headers,
        rows,
        title=(
            "Ablation - automatic vs fixed clustering thresholds "
            f"({CLUSTERS} clusters, error {ERROR_RATE:.0%})"
        ),
    )
    write_report("ablation_thresholds", table, data={"headers": headers, "rows": rows})

    auto_accuracy, auto_edits, _, _ = outcomes["auto"]
    # Auto matches the generous hand-tuned gray zone on accuracy...
    assert auto_accuracy >= outcomes["wide gray (2, 46)"][0] - 0.05
    assert auto_accuracy >= 0.9
    # ...while spending fewer edit-distance calls than the all-gray config.
    assert auto_edits <= outcomes["wide gray (2, 46)"][1]
