"""Shared infrastructure for the benchmark harness.

Every bench regenerates one table or figure of the paper (see DESIGN.md §3
for the experiment index).  Results are printed to stdout and written to
``benchmarks/out/<name>.txt`` so they survive pytest's output capture.

Heavier optional rows (the GRU seq2seq "RNN" simulator of Figure 4) are
enabled with ``REPRO_RNN=1``; see EXPERIMENTS.md.
"""

from __future__ import annotations

import json
import random
from pathlib import Path

import pytest

from repro.analysis import per_index_error_profile
from repro.dna.alphabet import random_sequence
from repro.reconstruction import DoubleSidedBMAReconstructor
from repro.simulation import WetlabReferenceChannel

OUT_DIR = Path(__file__).parent / "out"

#: Strand length shared by the simulator-fidelity experiments.
FIG3_LENGTH = 110
#: Clusters in the evaluation (test) set and reads per cluster.
FIG3_CLUSTERS = 300
FIG3_COVERAGE = 8
#: Paired (clean, noisy) strands available for fitting data-driven models.
FIG3_TRAIN_CLUSTERS = 800
FIG3_TRAIN_READS = 3


def write_report(name: str, text: str, data=None) -> Path:
    """Persist a rendered table/series under benchmarks/out/ and echo it.

    When *data* is given (any JSON-serialisable structure — typically the
    headers+rows behind the rendered table), it is also written to
    ``benchmarks/out/<name>.json`` so downstream tooling can consume the
    result without scraping the text rendering.
    """
    OUT_DIR.mkdir(exist_ok=True)
    path = OUT_DIR / f"{name}.txt"
    path.write_text(text + "\n", encoding="utf-8")
    if data is not None:
        json_path = OUT_DIR / f"{name}.json"
        json_path.write_text(
            json.dumps(data, indent=2, default=str) + "\n", encoding="utf-8"
        )
    print(f"\n{text}\n[written to {path}]")
    return path


@pytest.fixture(scope="session")
def fig3_experiment():
    """The shared setup of Figure 3 and Table I.

    Generates the "real wetlab" paired training data and the held-out test
    references, and returns a callable that evaluates a channel: simulate
    clusters, reconstruct with double-sided BMA (as in the paper's Figure
    3), and return the per-index error profile.
    """
    rng = random.Random(0xF163)
    real = WetlabReferenceChannel()
    train_pairs = []
    for _ in range(FIG3_TRAIN_CLUSTERS):
        clean = random_sequence(FIG3_LENGTH, rng)
        for _ in range(FIG3_TRAIN_READS):
            train_pairs.append((clean, real.transmit(clean, rng)))
    references = [random_sequence(FIG3_LENGTH, rng) for _ in range(FIG3_CLUSTERS)]
    reconstructor = DoubleSidedBMAReconstructor()

    def evaluate(channel, seed: int = 0xE7A1):
        eval_rng = random.Random(seed)
        clusters = [
            [channel.transmit(reference, eval_rng) for _ in range(FIG3_COVERAGE)]
            for reference in references
        ]
        outputs = [
            reconstructor.reconstruct(cluster, FIG3_LENGTH) for cluster in clusters
        ]
        return per_index_error_profile(references, outputs)

    return {
        "real_channel": real,
        "train_pairs": train_pairs,
        "references": references,
        "evaluate": evaluate,
    }


@pytest.fixture(scope="session")
def fig3_profiles(fig3_experiment):
    """Per-simulator error profiles, computed once for Fig. 3 and Table I."""
    from benchmarks.bench_fig3_simulator_profiles import build_profiles

    return build_profiles(fig3_experiment)
