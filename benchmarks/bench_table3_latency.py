"""Table III: per-module latency of the full pipeline.

Setting mirrors the paper: baseline encoding, payload length 120 nt
(30 bytes), total error rate 6%, coverages 10 and 50; all six
{q-gram, w-gram} x {BMA, double-sided BMA, NW} stage combinations.

Paper shapes (relative, not absolute — theirs is a 24-core C++-assisted
deployment, ours pure Python):

* decoding is negligible in every configuration;
* clustering dominates the pipeline for the BMA-family configurations and
  grows with coverage;
* reconstruction cost rises with coverage;
* the NW consensus's coverage scaling is sublinear (its POA folds at most
  ``max_cluster`` reads), while BMA's vote grows with every read;
* w-gram clustering's overhead over q-gram grows with coverage.

Known substrate deviation (recorded in EXPERIMENTS.md): in the paper the
NW reconstructor is the *fastest* at coverage 50 because it wraps SIMD
C++ spoa; in pure Python the constant factors invert and POA is the
slowest reconstructor, even though its coverage *scaling* is still the
best.
"""

from __future__ import annotations

from benchmarks.conftest import write_report
from repro.analysis import format_table
from repro.clustering import ClusteringConfig
from repro.codec import EncodingParameters
from repro.pipeline import Pipeline, PipelineConfig
from repro.reconstruction import (
    BMAReconstructor,
    DoubleSidedBMAReconstructor,
    NWConsensusReconstructor,
)
from repro.simulation import ConstantCoverage, IIDChannel

DATA = bytes(range(256)) * 6  # 1.5 KB -> 2 encoding units, 160 molecules
ERROR_RATE = 0.06
COVERAGES = (10, 50)

RECONSTRUCTORS = {
    "BMA": BMAReconstructor,
    "DBMA": DoubleSidedBMAReconstructor,
    "NWA": NWConsensusReconstructor,
}


def run_combination(signature: str, reconstructor_name: str, coverage: int):
    config = PipelineConfig(
        encoding=EncodingParameters(payload_bytes=30),
        channel=IIDChannel.from_total_rate(ERROR_RATE),
        coverage=ConstantCoverage(coverage),
        clustering=ClusteringConfig(signature=signature, seed=5),
        reconstructor=RECONSTRUCTORS[reconstructor_name](),
        seed=17,
    )
    return Pipeline(config).run(DATA)


def run_all():
    results = {}
    for coverage in COVERAGES:
        for signature in ("qgram", "wgram"):
            for reconstructor_name in RECONSTRUCTORS:
                key = (coverage, signature, reconstructor_name)
                results[key] = run_combination(signature, reconstructor_name, coverage)
    return results


def test_table3_latency(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for coverage in COVERAGES:
        for signature in ("qgram", "wgram"):
            for reconstructor_name in RECONSTRUCTORS:
                result = results[(coverage, signature, reconstructor_name)]
                timings = result.timings
                rows.append(
                    [
                        f"cov={coverage}",
                        f"{signature}+{reconstructor_name}",
                        f"{timings.encoding:.2f}",
                        f"{timings.clustering:.2f}",
                        f"{timings.reconstruction:.2f}",
                        f"{timings.decoding:.2f}",
                        f"{timings.total:.2f}",
                        "yes" if result.data == DATA else "NO",
                    ]
                )
    headers = [
        "coverage", "pipeline", "encode", "cluster", "recon", "decode", "total", "ok",
    ]
    table = format_table(
        headers,
        rows,
        title=(
            "Table III - module latency in seconds "
            f"(payload 120 nt, error rate {ERROR_RATE:.0%}, {len(DATA)} B file)"
        ),
    )
    write_report("table3_latency", table, data={"headers": headers, "rows": rows})

    # Every configuration must actually recover the file.
    assert all(result.data == DATA for result in results.values())

    def timing(coverage, signature, reconstructor_name):
        return results[(coverage, signature, reconstructor_name)].timings

    # Decoding is negligible relative to the pipeline total.
    for result in results.values():
        assert result.timings.decoding < 0.25 * result.timings.total

    # Clustering dominates the BMA-family pipelines (the paper's headline
    # observation: "the slowest step by far is clustering") and grows with
    # coverage.
    for reconstructor_name in ("BMA", "DBMA"):
        for coverage in COVERAGES:
            stage = timing(coverage, "qgram", reconstructor_name)
            assert stage.clustering > stage.reconstruction
    assert timing(50, "qgram", "BMA").clustering > timing(10, "qgram", "BMA").clustering

    # Reconstruction scales with coverage for every algorithm...
    for reconstructor_name in RECONSTRUCTORS:
        assert (
            timing(50, "qgram", reconstructor_name).reconstruction
            > timing(10, "qgram", reconstructor_name).reconstruction
        )
    # ...but NW's capped POA keeps its growth clearly sublinear in coverage.
    coverage_ratio = COVERAGES[1] / COVERAGES[0]
    nwa_ratio = (
        timing(50, "qgram", "NWA").reconstruction
        / timing(10, "qgram", "NWA").reconstruction
    )
    assert nwa_ratio < 0.8 * coverage_ratio

    # w-gram's extra cost per read is deterministic in *storage*: positional
    # signatures are int32 against the binary signatures' uint8, a 4x
    # footprint that scales with the read count (the paper: "more expensive
    # in space", "making w-gram unsuitable for high coverage settings").
    # Wall-clock signature times are reported in the table but not asserted;
    # at this pool size they sit in the tens of milliseconds, below
    # scheduler noise.
    import random as _random

    from repro.dna.qgram import QGramSignature, WGramSignature, sample_grams
    from repro.dna.alphabet import random_sequence

    grams = sample_grams(96, 4, _random.Random(0))
    sample_read = random_sequence(132, _random.Random(0))
    qgram_bytes = QGramSignature(grams).compute(sample_read).nbytes
    wgram_bytes = WGramSignature(grams).compute(sample_read).nbytes
    benchmark.extra_info["signature_bytes"] = {
        "qgram": qgram_bytes,
        "wgram": wgram_bytes,
    }
    assert wgram_bytes >= 4 * qgram_bytes
