"""Figure 3: per-index reconstruction error of simulated vs real data.

The paper's claim: reads produced by the naive i.i.d. (Rashtchian) and
SOLQC simulators are unrealistically easy to reconstruct, while the
data-driven model's reads match the difficulty profile of real wetlab data.

Here the "real" data comes from the hidden
:class:`~repro.simulation.wetlab_reference.WetlabReferenceChannel`
(DESIGN.md §4); the Rashtchian and SOLQC channels are calibrated to the
same aggregate error rates (the information a practitioner would have), and
the learned channel is fitted on paired samples only.

Shape check encoded in assertions: the learned profile deviates from the
real profile less than either baseline simulator's profile does.

Set ``REPRO_RNN=1`` to additionally train and evaluate the GRU+attention
seq2seq simulator (slower; see EXPERIMENTS.md).
"""

from __future__ import annotations

import os
import random

from benchmarks.conftest import write_report
from repro.analysis.error_profile import smooth_profile
from repro.analysis.reporting import format_series, sparkline
from repro.dna.alignment import edit_operations
from repro.simulation import IIDChannel, LearnedProfileChannel, SOLQCChannel

_SOLQC_DEFAULT_TOTAL = 0.0265  # summed default per-base event rates


def calibrate_naive_channels(train_pairs):
    """Estimate aggregate indel/sub rates the way a practitioner would."""
    ins = dele = sub = positions = 0
    for clean, noisy in train_pairs[:500]:
        for op in edit_operations(clean, noisy):
            if op.kind == "ins":
                ins += 1
            else:
                positions += 1
                if op.kind == "del":
                    dele += 1
                elif op.kind == "sub":
                    sub += 1
    rates = (ins / positions, dele / positions, sub / positions)
    iid = IIDChannel(*[min(rate, 0.3) for rate in rates])
    solqc = SOLQCChannel.scaled(sum(rates) / _SOLQC_DEFAULT_TOTAL)
    return iid, solqc


def build_profiles(experiment):
    """Evaluate every simulator; returns {name: ErrorProfile}."""
    iid, solqc = calibrate_naive_channels(experiment["train_pairs"])
    learned = LearnedProfileChannel(bins=40).fit(experiment["train_pairs"])
    channels = {
        "Rashtchian": iid,
        "SOLQC": solqc,
        "Learned": learned,
        "Real": experiment["real_channel"],
    }
    if os.environ.get("REPRO_RNN") == "1":
        channels["RNN"] = train_rnn(experiment)
    return {name: experiment["evaluate"](ch) for name, ch in channels.items()}


def train_rnn(experiment):
    from repro.seq2seq import Seq2SeqChannelModel, Seq2SeqTrainer, TrainingConfig

    epochs = int(os.environ.get("REPRO_RNN_EPOCHS", "8"))
    model = Seq2SeqChannelModel(hidden_size=48, embed_dim=12, attention_size=32)
    trainer = Seq2SeqTrainer(
        model, TrainingConfig(epochs=epochs, batch_size=16, learning_rate=3e-3)
    )
    rng = random.Random(1)
    pairs = experiment["train_pairs"]
    rng.shuffle(pairs)
    trainer.fit(pairs[:1200])
    return model


def test_fig3_per_index_profiles(benchmark, fig3_experiment, fig3_profiles):
    profiles = fig3_profiles
    real = profiles["Real"]
    # The timed unit: one full simulate-and-reconstruct evaluation pass
    # (what a researcher pays per simulator configuration tried).
    benchmark.pedantic(
        fig3_experiment["evaluate"],
        args=(fig3_experiment["real_channel"],),
        rounds=1,
        iterations=1,
    )

    lines = ["Figure 3 - per-index reconstruction error rate (double-sided BMA)"]
    for name, profile in profiles.items():
        smoothed = smooth_profile(profile.rates, window=5)
        lines.append(
            f"\n{name}: mean={profile.mean_rate * 100:.2f}% "
            f"perfect={profile.perfect}/{profile.strands}"
        )
        lines.append("  " + sparkline(smoothed, width=72))
        lines.append(format_series(f"  {name.lower()}_err", smoothed, stride=10))
    write_report(
        "fig3_simulator_profiles",
        "\n".join(lines),
        data={
            name: {
                "mean_rate": profile.mean_rate,
                "perfect": profile.perfect,
                "strands": profile.strands,
                "rates": profile.rates,
            }
            for name, profile in profiles.items()
        },
    )

    for name, profile in profiles.items():
        benchmark.extra_info[f"{name}_mean_error"] = round(profile.mean_rate, 4)

    # Shape: the learned simulator tracks the real difficulty profile more
    # closely than either naive simulator (the paper's headline result).
    learned_dev = profiles["Learned"].deviation_from(real)
    assert learned_dev < profiles["Rashtchian"].deviation_from(real)
    assert learned_dev < profiles["SOLQC"].deviation_from(real)
