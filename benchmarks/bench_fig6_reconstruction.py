"""Figure 6: per-index error profiles of the three reconstructors.

Paper shapes:

* single-sided BMA's error rate grows toward the late indexes
  (misalignment propagates left to right);
* double-sided BMA halves the propagation distance and concentrates the
  residual errors in the middle indexes;
* the Needleman-Wunsch (POA) consensus outperforms both overall.
"""

from __future__ import annotations

import random

import numpy as np

from benchmarks.conftest import write_report
from repro.analysis import per_index_error_profile
from repro.analysis.error_profile import smooth_profile
from repro.analysis.reporting import format_series, sparkline
from repro.dna.alphabet import random_sequence
from repro.reconstruction import (
    BMAReconstructor,
    DoubleSidedBMAReconstructor,
    NWConsensusReconstructor,
    TrellisMAPReconstructor,
)
from repro.simulation import WetlabReferenceChannel

LENGTH = 110
CLUSTERS = 200
COVERAGE = 10


def run_reconstructors():
    rng = random.Random(0xF166)
    channel = WetlabReferenceChannel()
    references = [random_sequence(LENGTH, rng) for _ in range(CLUSTERS)]
    clusters = [
        [channel.transmit(reference, rng) for _ in range(COVERAGE)]
        for reference in references
    ]
    reconstructors = {
        "BMA": BMAReconstructor(),
        "DoubleBMA": DoubleSidedBMAReconstructor(),
        "NW": NWConsensusReconstructor(),
        # Extension beyond the paper's three: trellis symbolwise-MAP
        # refinement (Srinivasavaradhan et al.) on top of the NW consensus.
        "NW+Trellis": TrellisMAPReconstructor(
            p_ins=0.015, p_del=0.025, p_sub=0.02, initial=NWConsensusReconstructor()
        ),
    }
    profiles = {}
    for name, reconstructor in reconstructors.items():
        outputs = [reconstructor.reconstruct(c, LENGTH) for c in clusters]
        profiles[name] = per_index_error_profile(references, outputs)
    return profiles


def test_fig6_reconstruction_profiles(benchmark):
    profiles = benchmark.pedantic(run_reconstructors, rounds=1, iterations=1)

    lines = [
        "Figure 6 - per-index error rate by reconstructor "
        f"({CLUSTERS} clusters, coverage {COVERAGE}, wetlab-reference channel)"
    ]
    for name, profile in profiles.items():
        smoothed = smooth_profile(profile.rates, window=7)
        lines.append(
            f"\n{name}: mean={profile.mean_rate * 100:.2f}% "
            f"perfect={profile.perfect}/{profile.strands}"
        )
        lines.append("  " + sparkline(smoothed, width=72))
        lines.append(format_series(f"  {name.lower()}_err", smoothed, stride=10))
    write_report(
        "fig6_reconstruction_profiles",
        "\n".join(lines),
        data={
            name: {
                "mean_rate": profile.mean_rate,
                "perfect": profile.perfect,
                "strands": profile.strands,
                "rates": profile.rates,
            }
            for name, profile in profiles.items()
        },
    )

    for name, profile in profiles.items():
        benchmark.extra_info[f"{name}_mean"] = round(profile.mean_rate, 4)
        benchmark.extra_info[f"{name}_perfect"] = profile.perfect

    bma = profiles["BMA"].rates
    double = profiles["DoubleBMA"].rates
    third = LENGTH // 3

    # BMA: late indexes worse than early ones.
    assert np.mean(bma[-third:]) > np.mean(bma[:third])
    # Double-sided BMA: middle peak above both edges.
    edges = np.concatenate([double[: third // 2], double[-third // 2 :]])
    middle = double[LENGTH // 2 - third // 2 : LENGTH // 2 + third // 2]
    assert np.mean(middle) > np.mean(edges)
    # NW outperforms prior work: lower error rate overall and strictly
    # lower in the middle third, where double-sided BMA piles up errors.
    assert profiles["NW"].mean_rate < profiles["BMA"].mean_rate
    assert profiles["NW"].mean_rate < profiles["DoubleBMA"].mean_rate
    nw_middle = profiles["NW"].rates[LENGTH // 2 - third // 2 : LENGTH // 2 + third // 2]
    assert np.mean(nw_middle) < np.mean(middle)
