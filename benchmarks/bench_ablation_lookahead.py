"""Ablation: BMA lookahead window size.

The lookahead window is what lets BMA classify a disagreeing read's edit
(substitution vs insertion vs deletion).  Window 1 barely distinguishes the
hypotheses; very large windows add cost without extra signal because the
reference prediction itself decays with distance.  Shape: accuracy improves
sharply from window 1 to the 2-4 range, then plateaus.
"""

from __future__ import annotations

import random

from benchmarks.conftest import write_report
from repro.analysis import format_table, per_index_error_profile
from repro.dna.alphabet import random_sequence
from repro.reconstruction import BMAReconstructor
from repro.simulation import IIDChannel

LENGTH = 100
CLUSTERS = 120
COVERAGE = 8
WINDOWS = (1, 2, 3, 4, 6, 8)


def run_ablation():
    rng = random.Random(0xAB1)
    channel = IIDChannel.from_total_rate(0.09)
    references = [random_sequence(LENGTH, rng) for _ in range(CLUSTERS)]
    clusters = [
        [channel.transmit(reference, rng) for _ in range(COVERAGE)]
        for reference in references
    ]
    profiles = {}
    for window in WINDOWS:
        reconstructor = BMAReconstructor(lookahead=window)
        outputs = [reconstructor.reconstruct(c, LENGTH) for c in clusters]
        profiles[window] = per_index_error_profile(references, outputs)
    return profiles


def test_ablation_lookahead(benchmark):
    profiles = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    rows = [
        [
            str(window),
            f"{profile.mean_rate * 100:.2f}%",
            f"{profile.perfect}/{profile.strands}",
        ]
        for window, profile in profiles.items()
    ]
    headers = ["lookahead", "mean error", "perfect"]
    table = format_table(
        headers,
        rows,
        title="Ablation - BMA lookahead window (error 9%, coverage 8)",
    )
    write_report("ablation_lookahead", table, data={"headers": headers, "rows": rows})

    # Window 1 is materially worse than the default of 3; beyond that the
    # curve flattens (no window in 4..8 is dramatically better than 3).
    assert profiles[1].mean_rate > profiles[3].mean_rate
    best_large = min(profiles[w].mean_rate for w in (4, 6, 8))
    assert profiles[3].mean_rate < best_large + 0.02
