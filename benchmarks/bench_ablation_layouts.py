"""Ablation: matrix layouts under a middle-peaked error profile.

Double-sided BMA concentrates reconstruction errors in the middle strand
indexes (Figure 6), which in the baseline layout means the *middle
codeword rows* absorb almost all errors while edge rows stay clean.  Gini's
diagonal redistribution spreads the same byte errors evenly over all
codewords, so each row sees a correctable number.

This ablation isolates the layout effect: encode with each layout, corrupt
matrix bytes with a synthetic middle-peaked positional profile (no
clustering/reconstruction noise in the loop), decode, and count
uncorrectable rows.  Shape: at corruption pressures where the baseline
layout starts losing rows, Gini still decodes, i.e. Gini tolerates a
strictly higher pressure before first failure.
"""

from __future__ import annotations

import math
import random

from benchmarks.conftest import write_report
from repro.analysis import format_table
from repro.codec import (
    BaselineLayout,
    DNADecoder,
    DNAEncoder,
    EncodingParameters,
    GiniLayout,
)
from repro.codec.bits import bases_to_bytes, bytes_to_bases

DATA = bytes(range(256)) * 4
PAYLOAD_BYTES = 32
#: per-strand-byte corruption probability at the profile's middle peak
PRESSURES = (0.05, 0.10, 0.16, 0.22, 0.3)


def middle_peaked_probability(row: int, rows: int, peak: float) -> float:
    """A Gaussian bump centred on the middle rows (DBMA's error shape)."""
    center = (rows - 1) / 2
    width = rows / 5
    return peak * math.exp(-(((row - center) / width) ** 2))


def corrupt_pool(references, params, peak, rng):
    """Corrupt payload bytes with row-position-dependent probability."""
    corrupted = []
    index_nt = params.index_bytes * 4
    for strand in references:
        payload = bytearray(bases_to_bytes(strand[index_nt:]))
        for row in range(len(payload)):
            if rng.random() < middle_peaked_probability(row, len(payload), peak):
                payload[row] ^= rng.randrange(1, 256)
        corrupted.append(strand[:index_nt] + bytes_to_bases(bytes(payload)))
    return corrupted


def run_ablation():
    rows = []
    failures = {}
    for layout_name, layout in (("baseline", BaselineLayout()), ("gini", GiniLayout())):
        params = EncodingParameters(payload_bytes=PAYLOAD_BYTES, layout=layout)
        encoder = DNAEncoder(params)
        decoder = DNADecoder(params)
        pool = encoder.encode(DATA)
        for peak in PRESSURES:
            rng = random.Random(0xAB1A)
            corrupted = corrupt_pool(pool.references, params, peak, rng)
            decoded, report = decoder.decode(corrupted, expected_units=pool.num_units)
            failures[(layout_name, peak)] = report.failed_rows
            rows.append(
                [
                    layout_name,
                    f"{peak:.2f}",
                    str(report.failed_rows),
                    str(report.corrected_rows),
                    "yes" if decoded == DATA else "NO",
                ]
            )
    return rows, failures


def test_ablation_layouts(benchmark):
    rows, failures = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    headers = ["layout", "peak corruption", "failed rows", "corrected rows", "recovered"]
    table = format_table(
        headers,
        rows,
        title="Ablation - Gini vs baseline layout under middle-peaked errors",
    )
    write_report("ablation_layouts", table, data={"headers": headers, "rows": rows})

    # At every pressure Gini never fails more rows than baseline, and over
    # the sweep it fails strictly fewer — the redistribution claim.
    for peak in PRESSURES:
        assert failures[("gini", peak)] <= failures[("baseline", peak)]
    assert sum(failures[("gini", peak)] for peak in PRESSURES) < sum(
        failures[("baseline", peak)] for peak in PRESSURES
    )
