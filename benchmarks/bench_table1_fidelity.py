"""Table I: simulator fidelity metrics.

For every simulator, against the real profile:

* (ii)  average per-index reconstruction error rate,
* (iii) mean absolute per-index deviation from the real profile,
* (iv)  number of perfectly reconstructed strands.

Paper shape: the data-driven model is closest to real on every metric; the
naive simulators are optimistic (easier reconstruction, more perfect
strands, profiles that deviate strongly).
"""

from __future__ import annotations

from benchmarks.conftest import FIG3_CLUSTERS, write_report
from repro.analysis import fidelity_metrics, format_table


def test_table1_fidelity_metrics(benchmark, fig3_profiles):
    real = fig3_profiles["Real"]
    rows = []
    metrics_by_name = {}
    for name, profile in fig3_profiles.items():
        metrics = benchmark.pedantic(
            fidelity_metrics,
            args=(name, profile, real),
            rounds=1,
            iterations=1,
        ) if name == "Real" else fidelity_metrics(name, profile, real)
        metrics_by_name[name] = metrics
        rows.append(metrics.as_row())

    headers = ["Simulator", "(ii) avg err", "(iii) dev from real", "(iv) perfect"]
    table = format_table(
        headers,
        rows,
        title=f"Table I - simulator fidelity ({FIG3_CLUSTERS} test clusters)",
    )
    write_report("table1_fidelity", table, data={"headers": headers, "rows": rows})
    for name, metrics in metrics_by_name.items():
        benchmark.extra_info[name] = metrics.as_row()

    learned = metrics_by_name["Learned"]
    rashtchian = metrics_by_name["Rashtchian"]
    solqc = metrics_by_name["SOLQC"]
    real_metrics = metrics_by_name["Real"]

    # (iii): the learned model's profile deviates least from real.
    assert learned.deviation_from_real < rashtchian.deviation_from_real
    assert learned.deviation_from_real < solqc.deviation_from_real
    # (iv): the learned model's perfect-strand count is closer to real than
    # the worse of the two naive baselines (the paper's RNN beats both).
    learned_gap = abs(learned.perfect_strands - real_metrics.perfect_strands)
    naive_gap = max(
        abs(rashtchian.perfect_strands - real_metrics.perfect_strands),
        abs(solqc.perfect_strands - real_metrics.perfect_strands),
    )
    assert learned_gap <= naive_gap
