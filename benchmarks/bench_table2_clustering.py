"""Table II: q-gram vs w-gram clustering across error rates.

At sequencing coverage 10 and total error rates 0.03-0.15, compare the two
signature flavours on:

* clustering accuracy (Rashtchian's recovered-cluster fraction),
* clustering time,
* signature calculation time.

Paper shapes: accuracy degrades as error rises and w-gram accuracy is at
least q-gram accuracy (the gap growing with error); w-gram signatures cost
more to compute and store; both flavours get much slower at high error
rates because more pairs fall into the edit-distance gray zone.
"""

from __future__ import annotations

import random

from benchmarks.conftest import write_report
from repro.analysis import format_table
from repro.clustering import (
    ClusteringConfig,
    RashtchianClusterer,
    clustering_accuracy,
)
from repro.dna.alphabet import random_sequence
from repro.simulation import ConstantCoverage, IIDChannel, sequence_pool

LENGTH = 116
CLUSTERS = 150
COVERAGE = 10
ERROR_RATES = (0.03, 0.06, 0.09, 0.12, 0.15)


def run_sweep():
    rng = random.Random(0x7AB2)
    references = [random_sequence(LENGTH, rng) for _ in range(CLUSTERS)]
    results = {}
    for error_rate in ERROR_RATES:
        run = sequence_pool(
            references,
            IIDChannel.from_total_rate(error_rate),
            ConstantCoverage(COVERAGE),
            rng,
        )
        truth = list(run.true_clusters().values())
        for signature in ("qgram", "wgram"):
            config = ClusteringConfig(signature=signature, seed=11)
            result = RashtchianClusterer(config).cluster(run.reads)
            accuracy = clustering_accuracy(result.clusters, truth)
            results[(error_rate, signature)] = (accuracy, result)
    return results


def test_table2_clustering(benchmark):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    rows = []
    for error_rate in ERROR_RATES:
        q_acc, q_res = results[(error_rate, "qgram")]
        w_acc, w_res = results[(error_rate, "wgram")]
        rows.append(
            [
                f"{error_rate:.2f}",
                f"{q_acc:.4f}",
                f"{w_acc:.4f}",
                f"{q_res.clustering_seconds:.1f}",
                f"{w_res.clustering_seconds:.1f}",
                f"{q_res.signature_seconds:.2f}",
                f"{w_res.signature_seconds:.2f}",
                f"{q_res.total_seconds:.1f}",
                f"{w_res.total_seconds:.1f}",
            ]
        )
    headers = [
        "err",
        "acc q",
        "acc w",
        "clu s q",
        "clu s w",
        "sig s q",
        "sig s w",
        "total q",
        "total w",
    ]
    table = format_table(
        headers,
        rows,
        title=(
            "Table II - q-gram vs w-gram clustering "
            f"({CLUSTERS} clusters, coverage {COVERAGE})"
        ),
    )
    write_report("table2_clustering", table, data={"headers": headers, "rows": rows})
    for (error_rate, signature), (accuracy, result) in results.items():
        benchmark.extra_info[f"{signature}@{error_rate}"] = {
            "accuracy": round(accuracy, 4),
            "edit_comparisons": result.edit_comparisons,
            "seconds": round(result.total_seconds, 2),
        }

    # Shapes.  Accuracy: high at low error; w-gram >= q-gram at the
    # highest error rate (the paper's novelty claim).
    assert results[(0.03, "qgram")][0] >= 0.95
    assert results[(0.03, "wgram")][0] >= 0.95
    assert results[(0.15, "wgram")][0] >= results[(0.15, "qgram")][0] - 0.02
    # w-gram signatures cost more: deterministically 4x the storage
    # (positions in int32 vs presence bits in uint8).  Wall-clock signature
    # times are reported in the table but not asserted — at this pool size
    # they are tens of milliseconds, below scheduler noise.
    import random as _random

    from repro.dna.qgram import QGramSignature, WGramSignature, sample_grams

    grams = sample_grams(96, 4, _random.Random(0))
    sample_read = "ACGT" * 29
    assert (
        WGramSignature(grams).compute(sample_read).nbytes
        >= 4 * QGramSignature(grams).compute(sample_read).nbytes
    )
    # Both flavours slow down substantially as the error rate grows.
    assert (
        results[(0.15, "qgram")][1].total_seconds
        > 2 * results[(0.03, "qgram")][1].total_seconds
    )
