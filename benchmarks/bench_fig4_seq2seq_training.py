"""Figure 4: the GRU+attention channel model, trained end to end.

Figure 4 of the paper is architectural (the seq2seq simulator's encoder/
attention/decoder); this bench makes it executable: it trains a compact
instance of the model on paired strands from the reference channel and
verifies the learning dynamics that the architecture is supposed to
deliver —

* teacher-forced loss decreases monotonically-ish across epochs,
* the trained model's sampled reads land near the clean strand (it learned
  to *copy through attention*, the hard part of the task),
* the untrained model's reads do not.

The timed quantity is training throughput (pairs/second) of the numpy
autograd implementation.  The full-fidelity Fig.3/Table-I comparison with
an RNN row is enabled separately via ``REPRO_RNN=1``.
"""

from __future__ import annotations

import random

from benchmarks.conftest import write_report
from repro.analysis import format_table
from repro.dna.alphabet import random_sequence
from repro.dna.distance import levenshtein_distance
from repro.seq2seq import Seq2SeqChannelModel, Seq2SeqTrainer, TrainingConfig
from repro.simulation import IIDChannel

STRAND_LENGTH = 24
PAIRS = 700
EPOCHS = 12


def make_pairs(rng):
    channel = IIDChannel(p_ins=0.01, p_del=0.01, p_sub=0.08)
    pairs = []
    for _ in range(PAIRS // 2):
        clean = random_sequence(STRAND_LENGTH, rng)
        pairs.append((clean, channel.transmit(clean, rng)))
        pairs.append((clean, channel.transmit(clean, rng)))
    return pairs


def mean_read_distance(model, rng, samples=30):
    strand = random_sequence(STRAND_LENGTH, rng)
    distances = [
        levenshtein_distance(strand, model.transmit(strand, rng))
        for _ in range(samples)
    ]
    return sum(distances) / len(distances)


def test_fig4_seq2seq_training(benchmark):
    rng = random.Random(0xF164)
    pairs = make_pairs(rng)
    model = Seq2SeqChannelModel(
        hidden_size=32, embed_dim=12, attention_size=24, seed=1
    )
    untrained_distance = mean_read_distance(model, rng)

    trainer = Seq2SeqTrainer(
        model, TrainingConfig(epochs=EPOCHS, batch_size=16, learning_rate=3e-3)
    )
    history = benchmark.pedantic(trainer.fit, args=(pairs,), rounds=1, iterations=1)
    trained_distance = mean_read_distance(model, rng)

    throughput = EPOCHS * len(pairs) / history.seconds
    rows = [
        ["parameters", str(model.parameter_count())],
        ["first epoch loss", f"{history.train_losses[0]:.3f}"],
        ["last epoch loss", f"{history.train_losses[-1]:.3f}"],
        ["training throughput", f"{throughput:.0f} pairs/s"],
        ["untrained read distance", f"{untrained_distance:.1f} edits"],
        ["trained read distance", f"{trained_distance:.1f} edits"],
    ]
    write_report(
        "fig4_seq2seq_training",
        format_table(
            ["quantity", "value"],
            rows,
            title="Figure 4 - GRU+attention channel model, trained on numpy autograd",
        ),
        data={"headers": ["quantity", "value"], "rows": rows},
    )
    benchmark.extra_info["throughput_pairs_per_s"] = round(throughput, 1)

    # Loss shrinks substantially and ends below 1 nat/token.
    assert history.train_losses[-1] < 0.6 * history.train_losses[0]
    # The model learned to copy: sampled reads are near the clean strand,
    # and far closer than the untrained model's babbling.
    assert trained_distance < 0.3 * STRAND_LENGTH
    assert trained_distance < 0.5 * untrained_distance