"""Ablation: rateless fountain coding vs the fixed-rate RS matrix.

The fixed-rate RS matrix commits to its loss tolerance at encoding time
(the parity-column fraction).  The LT fountain is *rateless*: to tolerate
more molecule dropout you simply synthesize more droplets of the same
file — no re-encoding, and the tolerated dropout grows in proportion to
the droplet budget.

The bench measures, for several droplet budgets, the highest molecule
dropout rate at which each architecture still decodes reliably
(>= 4 of 5 trials).  Shape assertions: the fountain's tolerated dropout
grows monotonically with overhead and roughly tracks ``1 - 1.1/overhead``
(peeling needs ~10% more droplets than blocks); the RS matrix at its fixed
33% overhead tolerates what its per-unit erasure budget allows and no
budget increase is possible without re-encoding.
"""

from __future__ import annotations

import random

from benchmarks.conftest import write_report
from repro.analysis import format_table
from repro.codec import DNADecoder, DNAEncoder, EncodingParameters, FountainCodec

DATA = bytes((i * 131) % 256 for i in range(18000))
DROPOUTS = tuple(round(0.05 * i, 2) for i in range(10))  # 0.00 .. 0.45
TRIALS = 5
FOUNTAIN_OVERHEADS = (1.2, 1.5, 2.0)
RS_PARAMS = EncodingParameters(payload_bytes=30, data_columns=60, parity_columns=20)


def _max_tolerated(decode_at) -> float:
    """Highest dropout with >= 4/5 successful decodes (monotone scan)."""
    tolerated = -1.0
    for dropout in DROPOUTS:
        if decode_at(dropout) >= TRIALS - 1:
            tolerated = dropout
        else:
            break
    return tolerated


def run_ablation():
    fountain = FountainCodec(block_bytes=30)
    blocks = fountain.split_blocks(DATA)

    results = {}
    for overhead in FOUNTAIN_OVERHEADS:
        droplets = fountain.encode(DATA, overhead=overhead)

        def decode_at(dropout, droplets=droplets):
            ok = 0
            for trial in range(TRIALS):
                rng = random.Random(hash((dropout, trial)) & 0xFFFFFFFF)
                survivors = [d for d in droplets if rng.random() >= dropout]
                try:
                    ok += fountain.decode(survivors, len(blocks)) == DATA
                except ValueError:
                    pass
            return ok

        results[f"fountain x{overhead:.1f}"] = _max_tolerated(decode_at)

    encoder = DNAEncoder(RS_PARAMS)
    decoder = DNADecoder(RS_PARAMS)
    pool = encoder.encode(DATA)

    def rs_decode_at(dropout):
        ok = 0
        for trial in range(TRIALS):
            rng = random.Random(hash((dropout, trial)) & 0xFFFFFFFF)
            survivors = [s for s in pool.references if rng.random() >= dropout]
            decoded, _ = decoder.decode(survivors, expected_units=pool.num_units)
            ok += decoded == DATA
        return ok

    results["RS matrix x1.3 (fixed)"] = _max_tolerated(rs_decode_at)
    return results


def test_ablation_fountain_vs_fixed_rate(benchmark):
    results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    rows = [
        [name, f"{tolerated:.0%}" if tolerated >= 0 else "never"]
        for name, tolerated in results.items()
    ]
    headers = ["architecture / molecule budget", "max reliable dropout"]
    table = format_table(
        headers,
        rows,
        title="Ablation - rateless fountain vs fixed-rate RS under molecule dropout",
    )
    write_report("ablation_fountain", table, data={"headers": headers, "rows": rows})
    benchmark.extra_info.update(results)

    tolerances = [results[f"fountain x{o:.1f}"] for o in FOUNTAIN_OVERHEADS]
    # Rateless scaling: more droplets -> strictly more tolerated dropout.
    assert tolerances == sorted(tolerances)
    assert tolerances[-1] > tolerances[0]
    # A doubled droplet budget tolerates heavy loss outright.
    assert tolerances[-1] >= 0.30
    # Everyone decodes the clean pool.
    assert all(tolerance >= 0.0 for tolerance in results.values())
