"""Figure 5: automatic threshold configuration for clustering.

A handful of probe reads is compared against a larger sample; the resulting
signature-distance histogram is dominated by the inter-cluster mode with a
small intra-cluster population below it.  The automatic configuration
places theta_low / theta_high under the inter mode (Section VI-B).

Shape checks: thresholds are ordered, sit below the inter-mode center, and
true intra-cluster distances overwhelmingly fall below theta_high while
true inter-cluster distances overwhelmingly fall above theta_low.
"""

from __future__ import annotations

import random

import numpy as np

from benchmarks.conftest import write_report
from repro.clustering.thresholds import (
    estimate_thresholds,
    sample_signature_distances,
)
from repro.dna.alphabet import random_sequence
from repro.dna.qgram import QGramSignature, sample_grams
from repro.simulation import ConstantCoverage, IIDChannel, sequence_pool


def test_fig5_threshold_histogram(benchmark):
    rng = random.Random(0xF165)
    references = [random_sequence(110, rng) for _ in range(400)]
    run = sequence_pool(
        references, IIDChannel.from_total_rate(0.06), ConstantCoverage(10), rng
    )
    grams = sample_grams(96, 4, rng)
    scheme = QGramSignature(grams)
    signatures = [scheme.compute(read) for read in run.reads]

    distances = sample_signature_distances(
        signatures, QGramSignature.distance, probes=24, sample_size=600, rng=rng
    )
    estimate = benchmark.pedantic(
        estimate_thresholds, args=(distances,), rounds=5, iterations=1
    )

    counts, edges = estimate.histogram(bins=30)
    lines = [
        "Figure 5 - signature-distance histogram and automatic thresholds",
        f"theta_low = {estimate.theta_low:.1f}   theta_high = {estimate.theta_high:.1f}   "
        f"inter mode center = {estimate.inter_center:.1f} (sigma {estimate.inter_sigma:.1f})",
        "",
    ]
    peak = counts.max() or 1
    for count, lo, hi in zip(counts, edges, edges[1:]):
        bar = "#" * int(50 * count / peak)
        marks = ""
        if lo <= estimate.theta_low < hi:
            marks += " <- theta_low"
        if lo <= estimate.theta_high < hi:
            marks += " <- theta_high"
        lines.append(f"{lo:6.1f}-{hi:6.1f} | {count:5d} {bar}{marks}")
    write_report(
        "fig5_thresholds",
        "\n".join(lines),
        data={
            "theta_low": estimate.theta_low,
            "theta_high": estimate.theta_high,
            "inter_center": estimate.inter_center,
            "inter_sigma": estimate.inter_sigma,
            "histogram": {
                "counts": [int(count) for count in counts],
                "edges": [float(edge) for edge in edges],
            },
        },
    )

    benchmark.extra_info["theta_low"] = round(estimate.theta_low, 2)
    benchmark.extra_info["theta_high"] = round(estimate.theta_high, 2)

    assert 0 <= estimate.theta_low <= estimate.theta_high < estimate.inter_center

    # Validate against ground truth: intra distances below theta_high,
    # inter distances above theta_low.
    truth = run.true_clusters()
    intra = []
    for members in list(truth.values())[:200]:
        for a, b in zip(members, members[1:]):
            intra.append(QGramSignature.distance(signatures[a], signatures[b]))
    inter = []
    inter_rng = random.Random(1)
    while len(inter) < 2000:
        i, j = inter_rng.randrange(len(run.reads)), inter_rng.randrange(len(run.reads))
        if run.origins[i] != run.origins[j]:
            inter.append(QGramSignature.distance(signatures[i], signatures[j]))
    intra_below = np.mean([d <= estimate.theta_high for d in intra])
    inter_above = np.mean([d > estimate.theta_low for d in inter])
    benchmark.extra_info["intra_below_theta_high"] = round(float(intra_below), 3)
    benchmark.extra_info["inter_above_theta_low"] = round(float(inter_above), 3)
    assert intra_below > 0.9
    assert inter_above > 0.999
